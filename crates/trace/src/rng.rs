//! Deterministic random numbers for workload generation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic pseudo-random source for trace kernels.
///
/// Every workload derives all its randomness (key values, tree-walk
/// targets, ray paths) from one of these, seeded from the workload's name
/// and a user seed, so the same configuration always produces byte-identical
/// traces — a requirement for comparing system configurations on *the same*
/// reference stream, as the paper does.
///
/// # Example
///
/// ```
/// use dsm_trace::rng::TraceRng;
/// let mut a = TraceRng::for_workload("radix", 42);
/// let mut b = TraceRng::for_workload("radix", 42);
/// assert_eq!(a.below(1000), b.below(1000));
/// ```
#[derive(Debug, Clone)]
pub struct TraceRng {
    inner: SmallRng,
}

impl TraceRng {
    /// Creates a generator for `workload` with the given seed.
    #[must_use]
    pub fn for_workload(workload: &str, seed: u64) -> Self {
        // Mix the workload name into the seed so different kernels with the
        // same user seed do not see correlated streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in workload.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TraceRng {
            inner: SmallRng::seed_from_u64(seed ^ h),
        }
    }

    /// A uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.random_range(0..bound)
    }

    /// A uniform value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        self.inner.random_range(lo..hi)
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.random_bool(p.clamp(0.0, 1.0))
    }

    /// A geometrically-decaying "distance" sample: returns a value in
    /// `0..bound` strongly biased toward 0, used to model locality-decaying
    /// neighbour selection in Barnes/FMM tree walks.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn near(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Sum of two uniforms squared concentrates near zero.
        let u: f64 = self.inner.random();
        let v = u * u * u;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let d = (v * bound as f64) as u64;
        d.min(bound - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_per_seed_and_name() {
        let mut a = TraceRng::for_workload("fft", 7);
        let mut b = TraceRng::for_workload("fft", 7);
        for _ in 0..100 {
            assert_eq!(a.below(1 << 30), b.below(1 << 30));
        }
    }

    #[test]
    fn different_names_decorrelate() {
        let mut a = TraceRng::for_workload("fft", 7);
        let mut b = TraceRng::for_workload("lu", 7);
        let same = (0..64).filter(|_| a.below(1000) == b.below(1000)).count();
        assert!(same < 16, "streams look correlated ({same}/64 equal)");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TraceRng::for_workload("t", 1);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = TraceRng::for_workload("t", 1);
        for _ in 0..1000 {
            let v = r.range(5, 10);
            assert!((5..10).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        TraceRng::for_workload("t", 1).below(0);
    }

    #[test]
    fn near_is_biased_low() {
        let mut r = TraceRng::for_workload("t", 3);
        let n = 10_000;
        let low = (0..n).filter(|_| r.near(1000) < 250).count();
        assert!(
            low > n / 2,
            "expected strong low bias, got {low}/{n} below 250"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut r = TraceRng::for_workload("t", 1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(r.chance(2.0));
    }
}
