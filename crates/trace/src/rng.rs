//! Deterministic random numbers for workload generation.
//!
//! Implemented locally (xoshiro256++ seeded through splitmix64) so the
//! crate carries no external dependencies and trace bytes are stable
//! across toolchains forever — the generator is part of the experimental
//! record.

/// A deterministic pseudo-random source for trace kernels.
///
/// Every workload derives all its randomness (key values, tree-walk
/// targets, ray paths) from one of these, seeded from the workload's name
/// and a user seed, so the same configuration always produces byte-identical
/// traces — a requirement for comparing system configurations on *the same*
/// reference stream, as the paper does.
///
/// # Example
///
/// ```
/// use dsm_trace::rng::TraceRng;
/// let mut a = TraceRng::for_workload("radix", 42);
/// let mut b = TraceRng::for_workload("radix", 42);
/// assert_eq!(a.below(1000), b.below(1000));
/// ```
#[derive(Debug, Clone)]
pub struct TraceRng {
    state: [u64; 4],
}

/// splitmix64 step: expands one 64-bit seed into a well-mixed stream,
/// the recommended way to initialize xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TraceRng {
    /// Creates a generator for `workload` with the given seed.
    #[must_use]
    pub fn for_workload(workload: &str, seed: u64) -> Self {
        // Mix the workload name into the seed so different kernels with the
        // same user seed do not see correlated streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in workload.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut sm = seed ^ h;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        TraceRng { state }
    }

    /// One xoshiro256++ step: full-period 64-bit output.
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform f64 in `[0, 1)` from the high 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's widening-multiply rejection method: unbiased without
        // division on the common path.
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(bound);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(bound);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// A geometrically-decaying "distance" sample: returns a value in
    /// `0..bound` strongly biased toward 0, used to model locality-decaying
    /// neighbour selection in Barnes/FMM tree walks.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn near(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // A uniform cubed concentrates near zero.
        let u: f64 = self.next_f64();
        let v = u * u * u;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let d = (v * bound as f64) as u64;
        d.min(bound - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_per_seed_and_name() {
        let mut a = TraceRng::for_workload("fft", 7);
        let mut b = TraceRng::for_workload("fft", 7);
        for _ in 0..100 {
            assert_eq!(a.below(1 << 30), b.below(1 << 30));
        }
    }

    #[test]
    fn different_names_decorrelate() {
        let mut a = TraceRng::for_workload("fft", 7);
        let mut b = TraceRng::for_workload("lu", 7);
        let same = (0..64).filter(|_| a.below(1000) == b.below(1000)).count();
        assert!(same < 16, "streams look correlated ({same}/64 equal)");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TraceRng::for_workload("t", 1);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = TraceRng::for_workload("t", 1);
        for _ in 0..1000 {
            let v = r.range(5, 10);
            assert!((5..10).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        TraceRng::for_workload("t", 1).below(0);
    }

    #[test]
    fn near_is_biased_low() {
        let mut r = TraceRng::for_workload("t", 3);
        let n = 10_000;
        let low = (0..n).filter(|_| r.near(1000) < 250).count();
        assert!(
            low > n / 2,
            "expected strong low bias, got {low}/{n} below 250"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut r = TraceRng::for_workload("t", 1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(r.chance(2.0));
    }
}
