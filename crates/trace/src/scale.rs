//! Trace-length scaling.

use dsm_types::ConfigError;

/// A factor in `(0, 1]` scaling the *repetition counts* of a workload
/// (timesteps, sweeps, sort passes, ray batches) without shrinking its data
/// set.
///
/// Scaling time instead of space keeps the working sets — and therefore the
/// capacity-miss behaviour the paper studies — honest, while letting tests
/// and Criterion benches run on short traces.
///
/// # Example
///
/// ```
/// use dsm_trace::Scale;
/// let s = Scale::new(0.25)?;
/// assert_eq!(s.apply(8), 2);
/// assert_eq!(s.apply(1), 1); // never scales to zero
/// # Ok::<(), dsm_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    factor: f64,
}

impl Scale {
    /// Creates a scale factor.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] unless `0 < factor <= 1`.
    pub fn new(factor: f64) -> Result<Self, ConfigError> {
        if !(factor > 0.0 && factor <= 1.0) {
            return Err(ConfigError::new(format!(
                "scale factor must be in (0, 1], got {factor}"
            )));
        }
        Ok(Scale { factor })
    }

    /// Full-length traces (factor 1), the paper's configuration.
    #[must_use]
    pub fn full() -> Self {
        Scale { factor: 1.0 }
    }

    /// The raw factor.
    #[must_use]
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// Scales a repetition count, never below 1.
    #[must_use]
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn apply(&self, count: u64) -> u64 {
        (((count as f64) * self.factor).round() as u64).max(1)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range() {
        assert!(Scale::new(0.0).is_err());
        assert!(Scale::new(-0.5).is_err());
        assert!(Scale::new(1.5).is_err());
        assert!(Scale::new(f64::NAN).is_err());
    }

    #[test]
    fn full_is_identity() {
        let s = Scale::full();
        assert_eq!(s.apply(17), 17);
        assert_eq!(s.factor(), 1.0);
    }

    #[test]
    fn scales_and_floors_at_one() {
        let s = Scale::new(0.1).unwrap();
        assert_eq!(s.apply(100), 10);
        assert_eq!(s.apply(3), 1);
        assert_eq!(s.apply(1), 1);
    }

    #[test]
    fn default_is_full() {
        assert_eq!(Scale::default(), Scale::full());
    }
}
