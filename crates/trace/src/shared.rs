//! The columnar (struct-of-arrays) replay buffer: one trace, shared by
//! every system configuration of a sweep.
//!
//! The paper's methodology replays the *same* trace against every
//! configuration (§4), which makes the trace read-mostly and shared —
//! exactly the shape where a columnar layout with precomputed columns
//! pays off. [`SharedTrace`] splits the padded array-of-structs
//! `Vec<MemRef>` (16 bytes per reference after alignment) into parallel
//! columns and, at construction, precomputes everything `System::process`
//! used to derive per reference per replay:
//!
//! * `issuing_cluster` / the packed local processor —
//!   [`Topology::split_of`];
//! * `home_cluster` — the page's home under pure first-touch placement
//!   (the issuing cluster of the trace's first reference to the page),
//!   plus a *first-touch* flag on that reference. This removes the
//!   per-reference page-table hash lookup from replay entirely; a system
//!   running OS page-migration policies ignores the column and falls
//!   back to its live placement map.
//!
//! Block and page numbers are *not* materialized: they are single shifts
//! off the address column (`addr >> shift`), which the decode loop
//! performs on a register-resident window — cheaper than streaming two
//! extra 8-byte columns through the cache.
//!
//! Replay consumes the columns in batches of [`BATCH`] decoded
//! references ([`SharedTrace::decode_batch`]). Each batch decodes
//! *column-at-a-time* over contiguous slices with no per-lane branches
//! (the wide-processor fallback is hoisted out of the lane loop), so
//! the loop is autovectorizer-friendly; 11 bytes per reference stream
//! through the hot loop (addr 8 + packed proc/op 1 + two cluster bytes).
//!
//! The address column itself lives behind [`AddrColumn`]: either an
//! owned `Vec<u64>` (traces built in memory) or a borrowed window of a
//! memory-mapped v2 trace file ([`crate::mmap::Mapping`]), in which case
//! loading is zero-copy — the file's address column *is* the replay
//! column, multi-gigabyte traces start instantly, and every sweep worker
//! shares the same physical pages read-only.
//!
//! The home column also makes partitioning a trace by home cluster — the
//! unit of the sharded simulator — a single column scan
//! ([`SharedTrace::shard_by_home`]).

use std::sync::Arc;

use dsm_types::{
    Addr, BlockAddr, ClusterId, ConfigError, DecodedRef, DenseMap, Geometry, LocalProcId, MemOp,
    MemRef, PageAddr, ProcId, Topology,
};

use crate::mmap::Mapping;

/// Number of references decoded per [`SharedTrace::decode_batch`] call —
/// a small power of two so the decode loop unrolls and the batch buffer
/// lives on the stack.
pub const BATCH: usize = 16;

/// Bit 6 of the packed `proc_op` column: the reference is a write.
const OP_BIT: u8 = 1 << 6;
/// Bit 7 of the packed `proc_op` column: first reference to its page.
const FIRST_TOUCH_BIT: u8 = 1 << 7;
/// Bits 0..6 of the packed `proc_op` column: the global processor id
/// (machines up to 64 processors; wider machines use the side column).
const PROC_MASK: u8 = OP_BIT - 1;

/// Reads the little-endian `u64` at `off` — the unaligned load the
/// mapped address column needs (the v2 addr column starts at byte
/// `34 + 2n + ceil(n/8)`, which is not 8-aligned).
#[inline(always)]
fn u64_le_at(bytes: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[off..off + 8]);
    u64::from_le_bytes(b)
}

/// The storage behind [`SharedTrace`]'s address column: owned for traces
/// built in memory, a borrowed window of a file mapping for traces
/// opened with [`crate::codec::open_shared_mapped`].
#[derive(Debug, Clone)]
pub(crate) enum AddrColumn {
    /// Trace built in memory (generated, or parsed from a reader).
    Owned(Vec<u64>),
    /// Zero-copy window into a mapped v2 trace file: `count` addresses
    /// starting at byte `offset` (little-endian, unaligned).
    Mapped {
        map: Arc<Mapping>,
        offset: usize,
        count: usize,
    },
}

impl AddrColumn {
    #[inline]
    fn len(&self) -> usize {
        match self {
            AddrColumn::Owned(v) => v.len(),
            AddrColumn::Mapped { count, .. } => *count,
        }
    }

    /// The address at `i`. Panics if out of range.
    #[inline(always)]
    fn at(&self, i: usize) -> u64 {
        match self {
            AddrColumn::Owned(v) => v[i],
            AddrColumn::Mapped { map, offset, count } => {
                assert!(i < *count, "address index {i} out of range");
                u64_le_at(map.bytes(), offset + i * 8)
            }
        }
    }

    /// Copies addresses `[start, start + out.len())` into `out` — the
    /// per-batch window load, one contiguous `memcpy`-shaped loop in
    /// either storage mode.
    #[inline(always)]
    fn fill(&self, start: usize, out: &mut [u64]) {
        match self {
            AddrColumn::Owned(v) => out.copy_from_slice(&v[start..start + out.len()]),
            AddrColumn::Mapped { map, offset, count } => {
                assert!(start + out.len() <= *count, "address window out of range");
                let base = offset + start * 8;
                let bytes = &map.bytes()[base..base + out.len() * 8];
                for (slot, ch) in out.iter_mut().zip(bytes.chunks_exact(8)) {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(ch);
                    *slot = u64::from_le_bytes(b);
                }
            }
        }
    }

    /// Heap bytes this column holds — 0 when mapped (the bytes are
    /// file-backed pages shared with every other reader of the file).
    fn heap_bytes(&self) -> usize {
        match self {
            AddrColumn::Owned(v) => v.len() * 8,
            AddrColumn::Mapped { .. } => 0,
        }
    }
}

/// The derived (non-address) columns, shared between the in-memory
/// builder and the mapped-file parser in [`crate::codec`].
pub(crate) struct DerivedColumns {
    pub(crate) proc_op: Vec<u8>,
    pub(crate) wide_proc: Vec<u16>,
    pub(crate) home_cluster: Vec<u8>,
    pub(crate) issuing_cluster: Vec<u8>,
}

/// Why [`derive_columns`] rejected a reference stream. Callers format
/// their own messages (the codec reports record indices, the in-memory
/// builder reports the offending reference).
pub(crate) enum DeriveError {
    /// The topology has more than 256 clusters (columns are one byte).
    TooManyClusters(u16),
    /// Reference `index` names processor `proc` outside the topology.
    BadProc { index: usize, proc: u16 },
}

/// One pass over `count` references — `nth(i)` yields `(proc, write,
/// addr)` — producing the packed and precomputed columns: processor
/// split, issuing cluster, and the page's first-touch home in trace
/// order (exactly the assignments a first-touch placement map makes
/// during replay).
pub(crate) fn derive_columns(
    topo: &Topology,
    geo: &Geometry,
    count: usize,
    mut nth: impl FnMut(usize) -> (u16, bool, u64),
) -> Result<DerivedColumns, DeriveError> {
    if topo.clusters() > 256 {
        return Err(DeriveError::TooManyClusters(topo.clusters()));
    }
    let total = topo.total_procs();
    let wide = total > 64;
    let mut proc_op = Vec::with_capacity(count);
    let mut wide_proc = Vec::with_capacity(if wide { count } else { 0 });
    let mut home_cluster = Vec::with_capacity(count);
    let mut issuing_cluster = Vec::with_capacity(count);
    let mut homes: DenseMap<u8> = DenseMap::new();
    for i in 0..count {
        let (proc, write, addr) = nth(i);
        if proc >= total {
            return Err(DeriveError::BadProc { index: i, proc });
        }
        let (cl, _) = topo.split_of(ProcId(proc));
        #[allow(clippy::cast_possible_truncation)] // clusters <= 256 checked above
        let cl8 = cl.0 as u8;
        let mut packed = if wide {
            wide_proc.push(proc);
            0
        } else {
            #[allow(clippy::cast_possible_truncation)] // total <= 64 in this arm
            {
                proc as u8
            }
        };
        if write {
            packed |= OP_BIT;
        }
        let page = geo.page_of(Addr(addr)).0;
        let home = match homes.get(page) {
            Some(&h) => h,
            None => {
                homes.insert(page, cl8);
                packed |= FIRST_TOUCH_BIT;
                cl8
            }
        };
        proc_op.push(packed);
        home_cluster.push(home);
        issuing_cluster.push(cl8);
    }
    Ok(DerivedColumns {
        proc_op,
        wide_proc,
        home_cluster,
        issuing_cluster,
    })
}

/// A reference trace in columnar (struct-of-arrays) form with
/// precomputed processor/home columns, bound to the [`Topology`] and
/// [`Geometry`] it was decomposed under.
///
/// # Example
///
/// ```
/// use dsm_trace::SharedTrace;
/// use dsm_types::{Addr, Geometry, MemRef, ProcId, Topology};
///
/// let topo = Topology::paper_default();
/// let geo = Geometry::paper_default();
/// let refs = vec![
///     MemRef::read(ProcId(4), Addr(0x1000)),
///     MemRef::write(ProcId(0), Addr(0x1040)),
/// ];
/// let shared = SharedTrace::from_refs(topo, geo, &refs);
/// assert_eq!(shared.len(), 2);
/// // Lossless round-trip back to the AoS form.
/// let back: Vec<MemRef> = shared.iter().collect();
/// assert_eq!(back, refs);
/// // Page 1 was first touched by P4 (cluster 1): both refs share home 1.
/// let mut batch = [dsm_types::DecodedRef::default(); dsm_trace::BATCH];
/// let n = shared.decode_batch(0, &mut batch);
/// assert_eq!(n, 2);
/// assert!(batch[0].first_touch && !batch[1].first_touch);
/// assert_eq!(batch[0].home, batch[1].home);
/// ```
#[derive(Debug, Clone)]
pub struct SharedTrace {
    topo: Topology,
    geo: Geometry,
    /// Byte address column: owned, or a zero-copy window of a mapped v2
    /// trace file. Block and page numbers are shifts off this column.
    addr: AddrColumn,
    /// Packed per-reference byte: bits 0..6 processor id (machines up to
    /// 64 processors), bit 6 write, bit 7 first touch of the page.
    proc_op: Vec<u8>,
    /// Full-width processor ids, populated only when the machine has more
    /// than 64 processors (the packed field cannot hold the id).
    wide_proc: Vec<u16>,
    /// Precomputed first-touch home cluster of each reference's page.
    home_cluster: Vec<u8>,
    /// Precomputed issuing cluster of each reference.
    issuing_cluster: Vec<u8>,
}

impl SharedTrace {
    /// Builds the columnar form of `refs`, splitting every processor
    /// under `topo` once and precomputing each page's first-touch home
    /// under `geo`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the topology has more than 256 clusters
    /// (the cluster columns are one byte wide; the coherence layer's
    /// presence words cap real machines at 64 anyway), or if any
    /// reference names a processor outside `topo`.
    pub fn try_from_refs(
        topo: Topology,
        geo: Geometry,
        refs: &[MemRef],
    ) -> Result<Self, ConfigError> {
        let derived = derive_columns(&topo, &geo, refs.len(), |i| {
            let r = &refs[i];
            (r.proc.0, r.op.is_write(), r.addr.0)
        })
        .map_err(|e| match e {
            DeriveError::TooManyClusters(c) => ConfigError::new(format!(
                "SharedTrace cluster columns are one byte: {c} clusters exceed 256"
            )),
            DeriveError::BadProc { proc, .. } => ConfigError::new(format!(
                "reference names processor P{proc} outside topology {topo}"
            )),
        })?;
        let addr = refs.iter().map(|r| r.addr.0).collect();
        Ok(Self::from_parts(
            topo,
            geo,
            AddrColumn::Owned(addr),
            derived,
        ))
    }

    /// Assembles a trace from an address column and its derived columns —
    /// the shared tail of the in-memory builder and the mapped parser.
    pub(crate) fn from_parts(
        topo: Topology,
        geo: Geometry,
        addr: AddrColumn,
        derived: DerivedColumns,
    ) -> Self {
        debug_assert_eq!(addr.len(), derived.proc_op.len());
        debug_assert_eq!(addr.len(), derived.home_cluster.len());
        debug_assert_eq!(addr.len(), derived.issuing_cluster.len());
        SharedTrace {
            topo,
            geo,
            addr,
            proc_op: derived.proc_op,
            wide_proc: derived.wide_proc,
            home_cluster: derived.home_cluster,
            issuing_cluster: derived.issuing_cluster,
        }
    }

    /// [`SharedTrace::try_from_refs`], panicking on invalid input — the
    /// form trace-generation pipelines use (their references are by
    /// construction inside the topology).
    ///
    /// # Panics
    ///
    /// Panics where [`SharedTrace::try_from_refs`] errors.
    #[must_use]
    pub fn from_refs(topo: Topology, geo: Geometry, refs: &[MemRef]) -> Self {
        SharedTrace::try_from_refs(topo, geo, refs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The topology the processor columns were split under.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The geometry the decomposition was derived under.
    #[must_use]
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// Number of references.
    #[must_use]
    pub fn len(&self) -> usize {
        self.addr.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.addr.len() == 0
    }

    /// Whether the address column borrows from a kernel file mapping —
    /// `true` only for traces opened zero-copy via
    /// [`crate::codec::open_shared_mapped`] on a platform with the raw
    /// `mmap` path.
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        match &self.addr {
            AddrColumn::Owned(_) => false,
            AddrColumn::Mapped { map, .. } => map.is_kernel_mapped(),
        }
    }

    /// Re-checks (via `fstat`) that the file backing a kernel-mapped
    /// address column is still at least as long as the mapped region, so
    /// a concurrent truncation surfaces as a clean error instead of a
    /// `SIGBUS` when replay first touches the vanished pages. Owned
    /// traces trivially pass.
    ///
    /// # Errors
    ///
    /// Returns the underlying `fstat` failure, or an error describing the
    /// shrunken file.
    pub fn revalidate_mapping(&self) -> std::io::Result<()> {
        match &self.addr {
            AddrColumn::Owned(_) => Ok(()),
            AddrColumn::Mapped { map, .. } => map.revalidate(),
        }
    }

    /// `"mapped"` or `"owned"` — the storage mode label telemetry and
    /// progress lines report.
    #[must_use]
    pub fn storage_mode(&self) -> &'static str {
        match &self.addr {
            AddrColumn::Owned(_) => "owned",
            AddrColumn::Mapped { .. } => "mapped",
        }
    }

    /// The reference at `i` in its original array-of-structs form.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn get(&self, i: usize) -> MemRef {
        let packed = self.proc_op[i];
        let proc = if self.wide_proc.is_empty() {
            u16::from(packed & PROC_MASK)
        } else {
            self.wide_proc[i]
        };
        let op = if packed & OP_BIT != 0 {
            MemOp::Write
        } else {
            MemOp::Read
        };
        MemRef::new(ProcId(proc), op, Addr(self.addr.at(i)))
    }

    /// Iterates the references in trace order as [`MemRef`]s — the
    /// lossless round-trip back to the array-of-structs form.
    pub fn iter(&self) -> impl Iterator<Item = MemRef> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Decodes up to `out.len()` references starting at `start` into
    /// `out`, returning how many were decoded (0 at end of trace). The
    /// replay hot loop calls this with a stack buffer of [`BATCH`]
    /// entries; processor splitting and first-touch home resolution
    /// happened at construction, and block/page numbers are shifts off
    /// a register-resident address window.
    #[inline]
    pub fn decode_batch(&self, start: usize, out: &mut [DecodedRef]) -> usize {
        let n = out.len().min(self.len().saturating_sub(start));
        if n == 0 {
            return 0;
        }
        let mut done = 0;
        while done < n {
            let m = (n - done).min(BATCH);
            self.decode_chunk(start + done, &mut out[done..done + m]);
            done += m;
        }
        n
    }

    /// Decodes exactly `out.len()` (≤ [`BATCH`]) references starting at
    /// `start`, column-at-a-time. The address window is staged into a
    /// stack array first, so every column access in the lane loop is a
    /// contiguous in-bounds slice read and the loop body carries no
    /// branches — the wide-processor fallback is hoisted out of it, and
    /// the tail is handled by the window length, not lane sentinels.
    #[inline]
    fn decode_chunk(&self, start: usize, out: &mut [DecodedRef]) {
        let m = out.len();
        debug_assert!(m <= BATCH);
        let end = start + m;
        // Geometry guarantees power-of-two sizes: shifts, not divides.
        let block_shift = self.geo.block_bytes().trailing_zeros();
        let page_shift = self.geo.page_bytes().trailing_zeros();
        let mut addrs = [0u64; BATCH];
        self.addr.fill(start, &mut addrs[..m]);
        let proc_op = &self.proc_op[start..end];
        let home = &self.home_cluster[start..end];
        let issuing = &self.issuing_cluster[start..end];
        let ppc = self.topo.procs_per_cluster();
        if self.wide_proc.is_empty() {
            for k in 0..m {
                let packed = proc_op[k];
                let cl = u16::from(issuing[k]);
                out[k] = DecodedRef {
                    cluster: ClusterId(cl),
                    lproc: LocalProcId(u16::from(packed & PROC_MASK) - cl * ppc),
                    write: packed & OP_BIT != 0,
                    first_touch: packed & FIRST_TOUCH_BIT != 0,
                    block: BlockAddr(addrs[k] >> block_shift),
                    page: PageAddr(addrs[k] >> page_shift),
                    home: ClusterId(u16::from(home[k])),
                };
            }
        } else {
            let wide = &self.wide_proc[start..end];
            for k in 0..m {
                let packed = proc_op[k];
                let cl = u16::from(issuing[k]);
                out[k] = DecodedRef {
                    cluster: ClusterId(cl),
                    lproc: LocalProcId(wide[k] - cl * ppc),
                    write: packed & OP_BIT != 0,
                    first_touch: packed & FIRST_TOUCH_BIT != 0,
                    block: BlockAddr(addrs[k] >> block_shift),
                    page: PageAddr(addrs[k] >> page_shift),
                    home: ClusterId(u16::from(home[k])),
                };
            }
        }
    }

    /// Visits `(issuing cluster, local processor, block)` for up to
    /// `len` references starting at `start`, without materializing
    /// [`DecodedRef`]s. The replay loops use this to issue machine-line
    /// prefetches for batch N+1 while batch N is in flight: the lane
    /// values stay in registers, so the *processing* batch's decode can
    /// remain fused with the process loop (a second decoded buffer
    /// would force every lane of both batches through the stack).
    #[inline]
    pub fn peek_batch(
        &self,
        start: usize,
        len: usize,
        mut f: impl FnMut(ClusterId, LocalProcId, BlockAddr),
    ) {
        let n = len.min(self.len().saturating_sub(start));
        if n == 0 {
            return;
        }
        let end = start + n;
        let block_shift = self.geo.block_bytes().trailing_zeros();
        let ppc = self.topo.procs_per_cluster();
        let proc_op = &self.proc_op[start..end];
        let issuing = &self.issuing_cluster[start..end];
        if self.wide_proc.is_empty() {
            for k in 0..n {
                let cl = u16::from(issuing[k]);
                let lp = u16::from(proc_op[k] & PROC_MASK) - cl * ppc;
                f(
                    ClusterId(cl),
                    LocalProcId(lp),
                    BlockAddr(self.addr.at(start + k) >> block_shift),
                );
            }
        } else {
            let wide = &self.wide_proc[start..end];
            for k in 0..n {
                let cl = u16::from(issuing[k]);
                f(
                    ClusterId(cl),
                    LocalProcId(wide[k] - cl * ppc),
                    BlockAddr(self.addr.at(start + k) >> block_shift),
                );
            }
        }
    }

    /// [`SharedTrace::peek_batch`] over *listed trace positions* (a
    /// gather) — the sharded replay's prefetch peek, visiting at most
    /// `len` of `indices`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[inline]
    pub fn peek_gather(
        &self,
        indices: &[u32],
        len: usize,
        mut f: impl FnMut(ClusterId, LocalProcId, BlockAddr),
    ) {
        let n = len.min(indices.len());
        let block_shift = self.geo.block_bytes().trailing_zeros();
        let ppc = self.topo.procs_per_cluster();
        for &i in &indices[..n] {
            let i = i as usize;
            let cl = u16::from(self.issuing_cluster[i]);
            let lp = if self.wide_proc.is_empty() {
                u16::from(self.proc_op[i] & PROC_MASK) - cl * ppc
            } else {
                self.wide_proc[i] - cl * ppc
            };
            f(
                ClusterId(cl),
                LocalProcId(lp),
                BlockAddr(self.addr.at(i) >> block_shift),
            );
        }
    }

    /// Partitions the trace by home cluster: `result[c]` lists the
    /// indices of every reference whose page is homed at cluster `c`, in
    /// trace order — one scan of the precomputed `home_cluster` column.
    /// This is the work split of the per-cluster sharded simulator (each
    /// shard owns the directory state of its home cluster's pages).
    #[must_use]
    pub fn shard_by_home(&self) -> Vec<Vec<u32>> {
        let mut shards = vec![Vec::new(); usize::from(self.topo.clusters())];
        for (i, &h) in self.home_cluster.iter().enumerate() {
            shards[usize::from(h)].push(u32::try_from(i).expect("trace indices fit u32"));
        }
        shards
    }

    /// Decodes up to `out.len()` references *from the listed trace
    /// positions* (a gather), returning how many were decoded. The
    /// sharded replay engine walks a [`ShardPlan`] shard's index list
    /// through this in [`BATCH`]-sized windows; semantics per entry are
    /// identical to [`SharedTrace::decode_batch`] at that index.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    #[inline]
    pub fn decode_gather(&self, indices: &[u32], out: &mut [DecodedRef]) -> usize {
        let n = out.len().min(indices.len());
        let block_shift = self.geo.block_bytes().trailing_zeros();
        let page_shift = self.geo.page_bytes().trailing_zeros();
        let ppc = self.topo.procs_per_cluster();
        if self.wide_proc.is_empty() {
            for (slot, &i) in out[..n].iter_mut().zip(indices) {
                let i = i as usize;
                let packed = self.proc_op[i];
                let cl = u16::from(self.issuing_cluster[i]);
                let a = self.addr.at(i);
                *slot = DecodedRef {
                    cluster: ClusterId(cl),
                    lproc: LocalProcId(u16::from(packed & PROC_MASK) - cl * ppc),
                    write: packed & OP_BIT != 0,
                    first_touch: packed & FIRST_TOUCH_BIT != 0,
                    block: BlockAddr(a >> block_shift),
                    page: PageAddr(a >> page_shift),
                    home: ClusterId(u16::from(self.home_cluster[i])),
                };
            }
        } else {
            for (slot, &i) in out[..n].iter_mut().zip(indices) {
                let i = i as usize;
                let packed = self.proc_op[i];
                let cl = u16::from(self.issuing_cluster[i]);
                let a = self.addr.at(i);
                *slot = DecodedRef {
                    cluster: ClusterId(cl),
                    lproc: LocalProcId(self.wide_proc[i] - cl * ppc),
                    write: packed & OP_BIT != 0,
                    first_touch: packed & FIRST_TOUCH_BIT != 0,
                    block: BlockAddr(a >> block_shift),
                    page: PageAddr(a >> page_shift),
                    home: ClusterId(u16::from(self.home_cluster[i])),
                };
            }
        }
        n
    }

    /// Computes the trace's independent-shard decomposition: the
    /// connected components of the *cluster sharing graph*, where two
    /// clusters are connected iff some page is referenced by both.
    ///
    /// Under first-touch placement every page is homed at a cluster that
    /// references it, so a component's pages are homed inside the
    /// component and every piece of machine state a component's
    /// references can touch — its clusters' caches/NC/PC/bus, the
    /// directory entries and placement slots of its pages, its relocation
    /// counters — is disjoint from every other component's. Each shard
    /// can therefore replay independently (in trace order within the
    /// shard) and merge back to *exactly* the serial result; see
    /// `System::run_sharded`.
    ///
    /// Shards are numbered by the trace position of their earliest
    /// reference, so the decomposition (and everything merged in shard
    /// order) is deterministic.
    #[must_use]
    pub fn shard_plan(&self) -> ShardPlan {
        let clusters = usize::from(self.topo.clusters());
        let page_shift = self.geo.page_bytes().trailing_zeros();
        // Union-find over the (≤ 256) clusters, keyed by shared pages.
        let mut parent: Vec<u16> = (0..clusters)
            .map(|c| u16::try_from(c).expect("clusters fit u16"))
            .collect();
        fn find(parent: &mut [u16], mut c: u16) -> u16 {
            while parent[usize::from(c)] != c {
                let gp = parent[usize::from(parent[usize::from(c)])];
                parent[usize::from(c)] = gp; // path halving
                c = gp;
            }
            c
        }
        // Page -> some cluster already seen referencing it. The first
        // toucher seeds the entry; every later accessor unions with it.
        let mut page_rep: DenseMap<u8> = DenseMap::new();
        for (i, &c) in self.issuing_cluster.iter().enumerate() {
            let page = self.addr.at(i) >> page_shift;
            match page_rep.get(page) {
                Some(&rep) => {
                    let (a, b) = (
                        find(&mut parent, u16::from(c)),
                        find(&mut parent, u16::from(rep)),
                    );
                    if a != b {
                        parent[usize::from(a.max(b))] = a.min(b);
                    }
                }
                None => {
                    page_rep.insert(page, c);
                }
            }
        }
        // Number shards by earliest reference, then gather index lists.
        let mut shard_of_root = vec![usize::MAX; clusters];
        let mut shard_of_cluster = vec![usize::MAX; clusters];
        let mut shards: Vec<Vec<u32>> = Vec::new();
        for (i, &c) in self.issuing_cluster.iter().enumerate() {
            let root = usize::from(find(&mut parent, u16::from(c)));
            let shard = if shard_of_root[root] == usize::MAX {
                shard_of_root[root] = shards.len();
                shards.push(Vec::new());
                shards.len() - 1
            } else {
                shard_of_root[root]
            };
            shard_of_cluster[usize::from(c)] = shard;
            shards[shard].push(u32::try_from(i).expect("trace indices fit u32"));
        }
        ShardPlan {
            shards,
            shard_of_cluster,
        }
    }

    /// Partitions the machine's *active* clusters (those issuing at
    /// least one reference) into at most `parts` balanced groups by
    /// per-cluster reference count — the work split of the
    /// intra-component round-based replay engine, where each worker owns
    /// a group of clusters plus every page they home.
    ///
    /// Balancing is greedy longest-processing-time: clusters are taken
    /// in descending reference count (ties broken by ascending cluster
    /// id) and each is assigned to the currently lightest part (ties
    /// broken by ascending part index), so the plan is deterministic for
    /// a given trace. Clusters issuing no references stay unassigned —
    /// their state is pristine and needs no owner.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero.
    #[must_use]
    pub fn cluster_partition(&self, parts: usize) -> ClusterPartition {
        assert!(parts > 0, "parts must be positive");
        let clusters = usize::from(self.topo.clusters());
        let mut refs_of_cluster = vec![0u64; clusters];
        for &c in &self.issuing_cluster {
            refs_of_cluster[usize::from(c)] += 1;
        }
        let mut active: Vec<usize> = (0..clusters).filter(|&c| refs_of_cluster[c] > 0).collect();
        let parts = parts.min(active.len()).max(1);
        // Descending count, ascending cluster id on ties.
        active.sort_by_key(|&c| (std::cmp::Reverse(refs_of_cluster[c]), c));
        let mut part_of_cluster = vec![usize::MAX; clusters];
        let mut load = vec![0u64; parts];
        for c in active {
            let lightest = (0..parts)
                .min_by_key(|&p| (load[p], p))
                .expect("parts is positive");
            part_of_cluster[c] = lightest;
            load[lightest] += refs_of_cluster[c];
        }
        ClusterPartition {
            parts,
            part_of_cluster,
            refs_of_part: load,
        }
    }

    /// Heap bytes held by the columns — the footprint quantity
    /// EXPERIMENTS.md tracks against the 16 padded bytes per reference of
    /// the array-of-structs form. A mapped address column contributes
    /// nothing: its bytes are file-backed pages shared with every other
    /// reader of the same file.
    #[must_use]
    pub fn column_bytes(&self) -> usize {
        self.addr.heap_bytes() + self.proc_op.len() * (1 + 1 + 1) + self.wide_proc.len() * 2
    }
}

/// The independent-shard decomposition of one trace (see
/// [`SharedTrace::shard_plan`]): per-shard reference index lists, each
/// in ascending trace order, plus the cluster → shard ownership map the
/// merge step uses to decide which worker's copy of a cluster unit is
/// authoritative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// `shards[s]` = trace indices of shard `s`'s references, ascending.
    shards: Vec<Vec<u32>>,
    /// `shard_of_cluster[c]` = the shard owning cluster `c`, or
    /// `usize::MAX` for a cluster issuing no references.
    shard_of_cluster: Vec<usize>,
}

impl ShardPlan {
    /// The per-shard reference index lists, in shard order (shards are
    /// numbered by their earliest reference's trace position).
    #[must_use]
    pub fn shards(&self) -> &[Vec<u32>] {
        &self.shards
    }

    /// Number of independent shards. A value of 1 means the whole trace
    /// is one sharing component and sharded replay degenerates to the
    /// serial path.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the plan has no shards (empty trace).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard owning cluster `c` (`None` if no reference is issued by
    /// `c` — such a cluster's state stays pristine and needs no merge).
    #[must_use]
    pub fn shard_of_cluster(&self, c: usize) -> Option<usize> {
        match self.shard_of_cluster.get(c) {
            Some(&s) if s != usize::MAX => Some(s),
            _ => None,
        }
    }

    /// The clusters owned by shard `s`, ascending.
    #[must_use]
    pub fn clusters_of(&self, s: usize) -> Vec<usize> {
        self.shard_of_cluster
            .iter()
            .enumerate()
            .filter_map(|(c, &owner)| (owner == s).then_some(c))
            .collect()
    }
}

/// A balanced assignment of active clusters to replay workers (see
/// [`SharedTrace::cluster_partition`]). Unlike [`ShardPlan`], the groups
/// are *not* coherence-independent: the round-based engine that consumes
/// this plan is responsible for keeping cross-part references exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterPartition {
    /// Number of parts actually formed (≤ requested, ≥ 1 when any
    /// cluster is active).
    parts: usize,
    /// `part_of_cluster[c]` = owning part, or `usize::MAX` if cluster
    /// `c` issues no references.
    part_of_cluster: Vec<usize>,
    /// Total references issued by each part's clusters.
    refs_of_part: Vec<u64>,
}

impl ClusterPartition {
    /// Number of parts formed.
    #[must_use]
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The part owning cluster `c`, or `None` for a cluster that issues
    /// no references (its state stays pristine).
    #[must_use]
    pub fn part_of_cluster(&self, c: usize) -> Option<usize> {
        match self.part_of_cluster.get(c) {
            Some(&p) if p != usize::MAX => Some(p),
            _ => None,
        }
    }

    /// The raw cluster → part table (`usize::MAX` = unassigned), sized
    /// to the machine's cluster count.
    #[must_use]
    pub fn part_table(&self) -> &[usize] {
        &self.part_of_cluster
    }

    /// The clusters owned by part `p`, ascending.
    #[must_use]
    pub fn clusters_of(&self, p: usize) -> Vec<usize> {
        self.part_of_cluster
            .iter()
            .enumerate()
            .filter_map(|(c, &owner)| (owner == p).then_some(c))
            .collect()
    }

    /// Total references issued by part `p`'s clusters.
    #[must_use]
    pub fn refs_of_part(&self, p: usize) -> u64 {
        self.refs_of_part[p]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refs_sample() -> Vec<MemRef> {
        // Mixed procs/pages; P9 (cluster 2) first-touches page 2.
        vec![
            MemRef::read(ProcId(9), Addr(2 * 4096 + 64)),
            MemRef::write(ProcId(0), Addr(0)),
            MemRef::read(ProcId(31), Addr(2 * 4096)),
            MemRef::write(ProcId(9), Addr(4096)),
            MemRef::read(ProcId(0), Addr(65)),
        ]
    }

    fn shared() -> SharedTrace {
        SharedTrace::from_refs(
            Topology::paper_default(),
            Geometry::paper_default(),
            &refs_sample(),
        )
    }

    /// The same trace with its address column re-homed behind a mapped
    /// buffer — every decode path must observe identical references.
    fn remap_addr_column(s: &SharedTrace) -> SharedTrace {
        let mut bytes = Vec::new();
        for r in s.iter() {
            bytes.extend_from_slice(&r.addr.0.to_le_bytes());
        }
        let mut out = s.clone();
        out.addr = AddrColumn::Mapped {
            map: Arc::new(Mapping::from_vec(bytes)),
            offset: 0,
            count: s.len(),
        };
        out
    }

    #[test]
    fn roundtrips_to_memrefs() {
        let s = shared();
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        let back: Vec<MemRef> = s.iter().collect();
        assert_eq!(back, refs_sample());
    }

    #[test]
    fn decomposition_matches_geometry() {
        let s = shared();
        let geo = Geometry::paper_default();
        let mut out = [DecodedRef::default(); BATCH];
        let n = s.decode_batch(0, &mut out);
        assert_eq!(n, 5);
        for (d, r) in out[..n].iter().zip(refs_sample()) {
            let parts = geo.decompose(r.addr);
            assert_eq!(d.block, parts.block);
            assert_eq!(d.page, parts.page);
            let (cl, lp) = Topology::paper_default().split_of(r.proc);
            assert_eq!((d.cluster, d.lproc), (cl, lp));
            assert_eq!(d.write, r.op.is_write());
        }
    }

    #[test]
    fn first_touch_homes_follow_trace_order() {
        let s = shared();
        let mut out = [DecodedRef::default(); BATCH];
        s.decode_batch(0, &mut out);
        // Page 2 first touched by P9 => cluster 2; both page-2 refs share it.
        assert_eq!(out[0].home, ClusterId(2));
        assert!(out[0].first_touch);
        assert_eq!(out[2].home, ClusterId(2));
        assert!(!out[2].first_touch);
        // Page 0 first touched by P0 => cluster 0.
        assert_eq!(out[1].home, ClusterId(0));
        assert!(out[1].first_touch);
        assert!(!out[4].first_touch);
        // Page 1 first touched by P9 => cluster 2, remote never set here.
        assert_eq!(out[3].home, ClusterId(2));
        assert!(out[3].first_touch);
        assert!(!out[3].remote());
    }

    #[test]
    fn batched_decode_covers_whole_trace() {
        let topo = Topology::paper_default();
        let geo = Geometry::paper_default();
        let refs: Vec<MemRef> = (0..100u64)
            .map(|i| MemRef::read(ProcId((i % 32) as u16), Addr(i * 128)))
            .collect();
        let s = SharedTrace::from_refs(topo, geo, &refs);
        let mut out = [DecodedRef::default(); BATCH];
        let mut seen = 0usize;
        let mut start = 0usize;
        loop {
            let n = s.decode_batch(start, &mut out);
            if n == 0 {
                break;
            }
            assert!(n <= BATCH);
            seen += n;
            start += n;
        }
        assert_eq!(seen, refs.len());
        assert_eq!(s.decode_batch(refs.len(), &mut out), 0);
    }

    #[test]
    fn oversized_output_windows_decode_whole_ranges() {
        // decode_batch accepts windows larger than BATCH (chunked
        // internally); lanes must match the one-batch-at-a-time decode.
        let refs: Vec<MemRef> = (0..50u64)
            .map(|i| MemRef::read(ProcId((i % 32) as u16), Addr(i * 192)))
            .collect();
        let s = SharedTrace::from_refs(Topology::paper_default(), Geometry::paper_default(), &refs);
        let mut wide = vec![DecodedRef::default(); 50];
        assert_eq!(s.decode_batch(0, &mut wide), 50);
        let mut narrow = [DecodedRef::default(); BATCH];
        let mut start = 0;
        while start < 50 {
            let n = s.decode_batch(start, &mut narrow);
            assert_eq!(&wide[start..start + n], &narrow[..n]);
            start += n;
        }
    }

    #[test]
    fn wide_machines_use_the_side_column() {
        // 32 clusters x 4 procs = 128 > 64: packed bits cannot hold ids.
        let topo = Topology::new(32, 4).unwrap();
        let geo = Geometry::paper_default();
        let refs = vec![
            MemRef::read(ProcId(127), Addr(64)),
            MemRef::write(ProcId(5), Addr(4096)),
        ];
        let s = SharedTrace::from_refs(topo, geo, &refs);
        assert_eq!(s.iter().collect::<Vec<_>>(), refs);
        let mut out = [DecodedRef::default(); 2];
        s.decode_batch(0, &mut out);
        assert_eq!(out[0].cluster, ClusterId(31));
        assert_eq!(out[0].lproc, LocalProcId(3));
        assert_eq!(out[1].cluster, ClusterId(1));
        assert_eq!(out[1].lproc, LocalProcId(1));
    }

    #[test]
    fn mapped_and_owned_storage_decode_identically() {
        let refs: Vec<MemRef> = (0..200u64)
            .map(|i| {
                let p = ProcId((i % 32) as u16);
                if i % 3 == 0 {
                    MemRef::write(p, Addr(i * 4096 / 3 + i))
                } else {
                    MemRef::read(p, Addr(i * 64))
                }
            })
            .collect();
        let owned =
            SharedTrace::from_refs(Topology::paper_default(), Geometry::paper_default(), &refs);
        let mapped = remap_addr_column(&owned);
        assert_eq!(owned.storage_mode(), "owned");
        assert_eq!(mapped.storage_mode(), "mapped");
        assert_eq!(mapped.iter().collect::<Vec<_>>(), refs);
        let (mut a, mut b) = (
            [DecodedRef::default(); BATCH],
            [DecodedRef::default(); BATCH],
        );
        let mut start = 0;
        loop {
            let n = owned.decode_batch(start, &mut a);
            assert_eq!(mapped.decode_batch(start, &mut b), n);
            if n == 0 {
                break;
            }
            assert_eq!(a[..n], b[..n]);
            start += n;
        }
        let indices: Vec<u32> = (0..200).rev().step_by(7).collect();
        let mut ga = vec![DecodedRef::default(); indices.len()];
        let mut gb = vec![DecodedRef::default(); indices.len()];
        assert_eq!(owned.decode_gather(&indices, &mut ga), indices.len());
        assert_eq!(mapped.decode_gather(&indices, &mut gb), indices.len());
        assert_eq!(ga, gb);
        assert_eq!(owned.shard_plan(), mapped.shard_plan());
        assert_eq!(owned.shard_by_home(), mapped.shard_by_home());
    }

    #[test]
    fn rejects_out_of_topology_processor() {
        let err = SharedTrace::try_from_refs(
            Topology::paper_default(),
            Geometry::paper_default(),
            &[MemRef::read(ProcId(32), Addr(0))],
        )
        .unwrap_err();
        assert!(err.to_string().contains("outside topology"), "{err}");
    }

    #[test]
    fn rejects_too_many_clusters() {
        let topo = Topology::new(300, 1).unwrap();
        let err = SharedTrace::try_from_refs(topo, Geometry::paper_default(), &[]).unwrap_err();
        assert!(err.to_string().contains("256"), "{err}");
    }

    #[test]
    fn shards_partition_by_home_column() {
        let s = shared();
        let shards = s.shard_by_home();
        assert_eq!(shards.len(), 8);
        // Pages 1 and 2 homed at cluster 2 (refs 0, 2, 3); page 0 at 0.
        assert_eq!(shards[2], vec![0, 2, 3]);
        assert_eq!(shards[0], vec![1, 4]);
        let total: usize = shards.iter().map(Vec::len).sum();
        assert_eq!(total, s.len());
    }

    #[test]
    fn shard_plan_splits_disjoint_sharing_components() {
        // Paper topology: 4 procs per cluster. Clusters {0,2} share page
        // 7 (procs 1 and 9); cluster 1 (proc 5) touches only page 3.
        let refs = vec![
            MemRef::read(ProcId(1), Addr(7 * 4096)),
            MemRef::write(ProcId(5), Addr(3 * 4096)),
            MemRef::read(ProcId(9), Addr(7 * 4096 + 64)),
            MemRef::read(ProcId(5), Addr(3 * 4096 + 128)),
            MemRef::write(ProcId(1), Addr(7 * 4096 + 64)),
        ];
        let s = SharedTrace::from_refs(Topology::paper_default(), Geometry::paper_default(), &refs);
        let plan = s.shard_plan();
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        // Shard 0 starts at ref 0 (clusters 0+2); shard 1 at ref 1.
        assert_eq!(plan.shards()[0], vec![0, 2, 4]);
        assert_eq!(plan.shards()[1], vec![1, 3]);
        assert_eq!(plan.shard_of_cluster(0), Some(0));
        assert_eq!(plan.shard_of_cluster(2), Some(0));
        assert_eq!(plan.shard_of_cluster(1), Some(1));
        assert_eq!(plan.shard_of_cluster(3), None);
        assert_eq!(plan.clusters_of(0), vec![0, 2]);
        assert_eq!(plan.clusters_of(1), vec![1]);
        // Every reference lands in exactly one shard.
        let total: usize = plan.shards().iter().map(Vec::len).sum();
        assert_eq!(total, s.len());
    }

    #[test]
    fn shard_plan_collapses_transitive_sharing() {
        // Cluster 0 shares page 1 with cluster 1; cluster 1 shares page 2
        // with cluster 2: all three form one component transitively.
        let refs = vec![
            MemRef::read(ProcId(0), Addr(4096)),
            MemRef::read(ProcId(4), Addr(4096)),
            MemRef::read(ProcId(4), Addr(2 * 4096)),
            MemRef::read(ProcId(8), Addr(2 * 4096)),
        ];
        let s = SharedTrace::from_refs(Topology::paper_default(), Geometry::paper_default(), &refs);
        let plan = s.shard_plan();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.shards()[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn shard_plan_of_empty_trace_is_empty() {
        let s = SharedTrace::from_refs(Topology::paper_default(), Geometry::paper_default(), &[]);
        let plan = s.shard_plan();
        assert!(plan.is_empty());
        assert_eq!(plan.shard_of_cluster(0), None);
    }

    #[test]
    fn decode_gather_matches_positional_decode() {
        let topo = Topology::paper_default();
        let geo = Geometry::paper_default();
        let refs: Vec<MemRef> = (0..50u64)
            .map(|i| {
                let p = ProcId((i % 32) as u16);
                if i % 3 == 0 {
                    MemRef::write(p, Addr(i * 256))
                } else {
                    MemRef::read(p, Addr(i * 64))
                }
            })
            .collect();
        let s = SharedTrace::from_refs(topo, geo, &refs);
        let mut all = vec![DecodedRef::default(); 50];
        let mut start = 0;
        while start < 50 {
            start += s.decode_batch(start, &mut all[start..]);
        }
        let indices: Vec<u32> = vec![3, 7, 7, 49, 0, 12];
        let mut out = [DecodedRef::default(); BATCH];
        let n = s.decode_gather(&indices, &mut out);
        assert_eq!(n, indices.len());
        for (d, &i) in out[..n].iter().zip(&indices) {
            assert_eq!(*d, all[i as usize], "index {i}");
        }
        // The gather respects the output window like decode_batch does.
        let mut two = [DecodedRef::default(); 2];
        assert_eq!(s.decode_gather(&indices, &mut two), 2);
        assert_eq!(s.decode_gather(&[], &mut out), 0);
    }

    #[test]
    fn shard_plan_replays_cover_gather_windows() {
        // A plan's shard walked through decode_gather in BATCH windows
        // yields the shard's refs in trace order.
        let refs: Vec<MemRef> = (0..40u64)
            .map(|i| MemRef::read(ProcId((i % 8) as u16), Addr((i % 8) * 4096 + i * 64)))
            .collect();
        let s = SharedTrace::from_refs(Topology::paper_default(), Geometry::paper_default(), &refs);
        let plan = s.shard_plan();
        assert_eq!(plan.len(), 2, "procs 0-3 -> cluster 0, 4-7 -> cluster 1");
        let mut seen = Vec::new();
        for shard in plan.shards() {
            let mut window = 0;
            let mut out = [DecodedRef::default(); BATCH];
            while window < shard.len() {
                let n = s.decode_gather(&shard[window..], &mut out);
                assert!(n > 0);
                window += n;
            }
            seen.extend_from_slice(shard);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..40u32).collect::<Vec<_>>());
    }

    #[test]
    fn column_bytes_track_the_footprint() {
        // 11 bytes per reference owned (addr 8 + packed 1 + two cluster
        // bytes); block/page are shifts, not columns.
        let s = shared();
        assert_eq!(s.column_bytes(), 5 * 11);
        let wide = SharedTrace::from_refs(
            Topology::new(32, 4).unwrap(),
            Geometry::paper_default(),
            &[MemRef::read(ProcId(0), Addr(0))],
        );
        assert_eq!(wide.column_bytes(), 11 + 2);
        // A mapped address column costs no heap: 3 bytes/ref remain.
        let mapped = remap_addr_column(&s);
        assert_eq!(mapped.column_bytes(), 5 * 3);
    }

    #[test]
    fn cluster_partition_balances_by_ref_count() {
        let topo = Topology::new(4, 4).unwrap();
        let geo = Geometry::paper_default();
        // Cluster loads 40/30/20/10: LPT into two parts gives {0,10=c3}
        // and {30=c1,20=c2} → loads 50/50.
        let mut refs = Vec::new();
        for (c, n) in [(0u16, 40u64), (1, 30), (2, 20), (3, 10)] {
            for i in 0..n {
                refs.push(MemRef::read(
                    ProcId(c * 4),
                    Addr((u64::from(c) * 1024 + i % 4) * geo.page_bytes()),
                ));
            }
        }
        let trace = SharedTrace::from_refs(topo, geo, &refs);
        let p = trace.cluster_partition(2);
        assert_eq!(p.parts(), 2);
        assert_eq!(p.part_of_cluster(0), Some(0));
        assert_eq!(p.part_of_cluster(1), Some(1));
        assert_eq!(p.part_of_cluster(2), Some(1));
        assert_eq!(p.part_of_cluster(3), Some(0));
        assert_eq!(p.refs_of_part(0), 50);
        assert_eq!(p.refs_of_part(1), 50);
        assert_eq!(p.clusters_of(1), vec![1, 2]);
        // More parts than active clusters clamps; idle clusters stay
        // unassigned.
        let solo = SharedTrace::from_refs(topo, geo, &refs[..3]);
        let q = solo.cluster_partition(8);
        assert_eq!(q.parts(), 1);
        assert_eq!(q.part_of_cluster(0), Some(0));
        assert_eq!(q.part_of_cluster(3), None);
        assert_eq!(q.part_table()[3], usize::MAX);
    }

    #[test]
    fn empty_trace_is_fine() {
        let s = SharedTrace::from_refs(Topology::paper_default(), Geometry::paper_default(), &[]);
        assert!(s.is_empty());
        let mut out = [DecodedRef::default(); BATCH];
        assert_eq!(s.decode_batch(0, &mut out), 0);
        assert!(s.iter().next().is_none());
    }
}
