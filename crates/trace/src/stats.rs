//! Summary statistics over a generated trace.

use std::collections::HashSet;

use dsm_types::{Geometry, MemRef, Topology};

/// Aggregate characteristics of a reference trace: lengths, read/write mix,
/// and the touched footprint at block and page granularity. The Table 3
/// harness uses this to report each workload's shared-memory size, and
/// tests use it to validate that kernels have the locality character the
/// paper describes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Total references.
    pub refs: u64,
    /// Read references.
    pub reads: u64,
    /// Write references.
    pub writes: u64,
    /// Distinct blocks touched.
    pub blocks_touched: u64,
    /// Distinct pages touched.
    pub pages_touched: u64,
    /// References per processor.
    pub per_proc: Vec<u64>,
}

impl TraceStats {
    /// Computes statistics for `trace` under the given geometry/topology.
    #[must_use]
    pub fn compute(trace: &[MemRef], geo: &Geometry, topo: &Topology) -> Self {
        let mut blocks = HashSet::new();
        let mut pages = HashSet::new();
        let mut per_proc = vec![0u64; usize::from(topo.total_procs())];
        let mut reads = 0u64;
        let mut writes = 0u64;
        for r in trace {
            if r.op.is_write() {
                writes += 1;
            } else {
                reads += 1;
            }
            blocks.insert(geo.block_of(r.addr).0);
            pages.insert(geo.page_of(r.addr).0);
            per_proc[r.proc.index()] += 1;
        }
        TraceStats {
            refs: trace.len() as u64,
            reads,
            writes,
            blocks_touched: blocks.len() as u64,
            pages_touched: pages.len() as u64,
            per_proc,
        }
    }

    /// Fraction of references that are writes.
    #[must_use]
    pub fn write_fraction(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.writes as f64 / self.refs as f64
        }
    }

    /// Touched footprint in bytes at page granularity.
    #[must_use]
    pub fn footprint_bytes(&self, geo: &Geometry) -> u64 {
        self.pages_touched * geo.page_bytes()
    }

    /// Mean references per touched block — a crude spatial+temporal
    /// locality indicator (regular kernels revisit blocks many times;
    /// Raytrace-style sparse kernels approach 1).
    #[must_use]
    pub fn refs_per_block(&self) -> f64 {
        if self.blocks_touched == 0 {
            0.0
        } else {
            self.refs as f64 / self.blocks_touched as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_types::{Addr, MemRef, ProcId};

    #[test]
    fn empty_trace() {
        let geo = Geometry::paper_default();
        let topo = Topology::new(1, 2).unwrap();
        let s = TraceStats::compute(&[], &geo, &topo);
        assert_eq!(s.refs, 0);
        assert_eq!(s.write_fraction(), 0.0);
        assert_eq!(s.refs_per_block(), 0.0);
        assert_eq!(s.per_proc, vec![0, 0]);
    }

    #[test]
    fn counts_and_footprint() {
        let geo = Geometry::paper_default();
        let topo = Topology::new(1, 2).unwrap();
        let trace = vec![
            MemRef::read(ProcId(0), Addr(0)),
            MemRef::read(ProcId(0), Addr(8)),    // same block
            MemRef::write(ProcId(1), Addr(64)),  // new block, same page
            MemRef::read(ProcId(1), Addr(4096)), // new page
        ];
        let s = TraceStats::compute(&trace, &geo, &topo);
        assert_eq!(s.refs, 4);
        assert_eq!(s.reads, 3);
        assert_eq!(s.writes, 1);
        assert_eq!(s.blocks_touched, 3);
        assert_eq!(s.pages_touched, 2);
        assert_eq!(s.per_proc, vec![2, 2]);
        assert_eq!(s.footprint_bytes(&geo), 8192);
        assert!((s.write_fraction() - 0.25).abs() < 1e-12);
        assert!((s.refs_per_block() - 4.0 / 3.0).abs() < 1e-12);
    }
}
