//! The workload abstraction and the catalog of paper benchmarks.

use core::fmt;

use dsm_types::{MemRef, Topology};

use crate::workloads::{Barnes, Cholesky, Fft, Fmm, Lu, Ocean, Radix, Raytrace};
use crate::Scale;

/// A shared-memory trace kernel: a deterministic generator of the
/// interleaved reference stream of one parallel program.
///
/// Implementations mirror the paper's SPLASH-2 benchmarks (see the crate
/// docs for the substitution rationale). All of them:
///
/// * produce byte-identical traces for the same parameters, topology and
///   scale (no hidden global state);
/// * begin with an initialization phase in which each region is first
///   touched by its eventual owner, so first-touch placement distributes
///   pages as the tuned SPLASH-2 codes do;
/// * scale *time* (passes, steps, batches) rather than *space*, keeping the
///   paper's data-set sizes and working sets intact.
pub trait Workload {
    /// The benchmark's (lowercase) name, e.g. `"radix"`.
    fn name(&self) -> &'static str;

    /// Human-readable parameter summary, e.g. `"1M integers"` (Table 3).
    fn params(&self) -> String;

    /// The shared-data footprint in bytes implied by the parameters
    /// (compare with Table 3 of the paper).
    fn shared_bytes(&self) -> u64;

    /// Generates the interleaved reference trace for `topo` at `scale`.
    fn generate(&self, topo: &Topology, scale: Scale) -> Vec<MemRef>;
}

/// The eight paper benchmarks, for harness iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Barnes-Hut N-body (16K bodies).
    Barnes,
    /// Supernodal sparse Cholesky (tk15.0-sized).
    Cholesky,
    /// Six-step FFT (64K points).
    Fft,
    /// Adaptive fast multipole method (16K bodies).
    Fmm,
    /// Blocked dense LU (512 x 512).
    Lu,
    /// Ocean simulation (258 x 258).
    Ocean,
    /// Radix sort (1M integers).
    Radix,
    /// Raytrace (car-sized scene).
    Raytrace,
}

impl WorkloadKind {
    /// All eight benchmarks in the paper's (alphabetical) order.
    #[must_use]
    pub fn all() -> [WorkloadKind; 8] {
        [
            WorkloadKind::Barnes,
            WorkloadKind::Cholesky,
            WorkloadKind::Fft,
            WorkloadKind::Fmm,
            WorkloadKind::Lu,
            WorkloadKind::Ocean,
            WorkloadKind::Radix,
            WorkloadKind::Raytrace,
        ]
    }

    /// Instantiates the benchmark with the paper's parameters (Table 3).
    #[must_use]
    pub fn paper_instance(self) -> Box<dyn Workload> {
        match self {
            WorkloadKind::Barnes => Box::new(Barnes::default()),
            WorkloadKind::Cholesky => Box::new(Cholesky::default()),
            WorkloadKind::Fft => Box::new(Fft::default()),
            WorkloadKind::Fmm => Box::new(Fmm::default()),
            WorkloadKind::Lu => Box::new(Lu::default()),
            WorkloadKind::Ocean => Box::new(Ocean::default()),
            WorkloadKind::Radix => Box::new(Radix::default()),
            WorkloadKind::Raytrace => Box::new(Raytrace::default()),
        }
    }

    /// Instantiates a reduced-size variant for fast tests and examples
    /// (smaller data sets, same phase structure).
    #[must_use]
    pub fn dev_instance(self) -> Box<dyn Workload> {
        match self {
            WorkloadKind::Barnes => Box::new(Barnes::with_bodies(1 << 10)),
            WorkloadKind::Cholesky => Box::new(Cholesky::with_supernodes(64)),
            WorkloadKind::Fft => Box::new(Fft::with_points(1 << 10)),
            WorkloadKind::Fmm => Box::new(Fmm::with_bodies(1 << 10)),
            WorkloadKind::Lu => Box::new(Lu::with_matrix(128)),
            WorkloadKind::Ocean => Box::new(Ocean::with_grid(66)),
            WorkloadKind::Radix => Box::new(Radix::with_keys(1 << 14)),
            WorkloadKind::Raytrace => Box::new(Raytrace::with_scene_mb(2)),
        }
    }

    /// The benchmark name as the paper writes it.
    #[must_use]
    pub fn display_name(self) -> &'static str {
        match self {
            WorkloadKind::Barnes => "Barnes",
            WorkloadKind::Cholesky => "Cholesky",
            WorkloadKind::Fft => "FFT",
            WorkloadKind::Fmm => "FMM",
            WorkloadKind::Lu => "LU",
            WorkloadKind::Ocean => "Ocean",
            WorkloadKind::Radix => "Radix",
            WorkloadKind::Raytrace => "Raytrace",
        }
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_eight_unique() {
        let all = WorkloadKind::all();
        assert_eq!(all.len(), 8);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(WorkloadKind::Fft.to_string(), "FFT");
        assert_eq!(WorkloadKind::Barnes.to_string(), "Barnes");
    }

    #[test]
    fn paper_instances_report_names() {
        for kind in WorkloadKind::all() {
            let w = kind.paper_instance();
            assert_eq!(w.name(), kind.display_name().to_lowercase());
            assert!(w.shared_bytes() > 0);
        }
    }

    #[test]
    fn dev_instances_are_smaller() {
        for kind in WorkloadKind::all() {
            let paper = kind.paper_instance();
            let dev = kind.dev_instance();
            assert!(
                dev.shared_bytes() < paper.shared_bytes(),
                "{kind}: dev {} !< paper {}",
                dev.shared_bytes(),
                paper.shared_bytes()
            );
        }
    }
}
