//! Barnes-Hut N-body trace kernel (SPLASH-2 `Barnes`, 16K bodies).
//!
//! Bodies and tree cells live in two shared arrays (16384 x 128 B bodies +
//! 8192 x 240 B cells = Table 3's 3.94 MB). Each timestep rebuilds the tree
//! (writes to own cells plus contended writes near the root) and computes
//! forces: every body's walk reads the *hot* top-of-tree cells shared by
//! all processors plus a locality-decaying set of neighbour cells and
//! bodies — the paper's "irregular access patterns and little spatial
//! locality" profile, read-dominated.

use dsm_types::{MemRef, ProcId, Topology};

use crate::rng::TraceRng;
use crate::{Layout, PhaseBuilder, Region, Scale, Workload};

const BODY_BYTES: u64 = 128;
const CELL_BYTES: u64 = 240;
const TIMESTEPS: u64 = 2;
/// Cells read by every walk from the top of the tree.
const HOT_READS: u64 = 8;
/// Locality-decaying interaction cells per body.
const NEAR_READS: u64 = 24;
/// Neighbour bodies read per body.
const BODY_READS: u64 = 8;

/// The Barnes-Hut trace kernel.
#[derive(Debug, Clone)]
pub struct Barnes {
    bodies: u64,
}

impl Barnes {
    /// Barnes-Hut over `bodies` bodies (cells are `bodies / 2`).
    ///
    /// # Panics
    ///
    /// Panics if `bodies` is not a positive multiple of 64.
    #[must_use]
    pub fn with_bodies(bodies: u64) -> Self {
        assert!(
            bodies > 0 && bodies.is_multiple_of(64),
            "body count {bodies} must be a positive multiple of 64"
        );
        Barnes { bodies }
    }

    fn cells(&self) -> u64 {
        self.bodies / 2
    }
}

impl Default for Barnes {
    /// The paper's instance: 16K bodies.
    fn default() -> Self {
        Barnes::with_bodies(1 << 14)
    }
}

impl Barnes {
    fn read_cell(phase: &mut PhaseBuilder, proc: ProcId, cells: &Region, idx: u64) {
        // A cell spans four blocks; a walk inspects the mass/center fields
        // in the first block and the child pointers one block later.
        phase.read(proc, cells.at(idx * CELL_BYTES));
        phase.read(proc, cells.at(idx * CELL_BYTES + 64));
    }
}

impl Workload for Barnes {
    fn name(&self) -> &'static str {
        "barnes"
    }

    fn params(&self) -> String {
        format!("{}K bodies", self.bodies >> 10)
    }

    fn shared_bytes(&self) -> u64 {
        let mut l = Layout::new(4096);
        let _ = l.region("bodies", self.bodies * BODY_BYTES);
        let _ = l.region("cells", self.cells() * CELL_BYTES);
        l.total_bytes()
    }

    fn generate(&self, topo: &Topology, scale: Scale) -> Vec<MemRef> {
        let mut l = Layout::new(4096);
        let bodies = l
            .region("bodies", self.bodies * BODY_BYTES)
            .expect("nonzero");
        let cells = l
            .region("cells", self.cells() * CELL_BYTES)
            .expect("nonzero");
        let p = u64::from(topo.total_procs());
        let bodies_per_proc = self.bodies / p;
        let cells_per_proc = self.cells() / p;
        let steps = scale.apply(TIMESTEPS);
        let mut rng = TraceRng::for_workload("barnes", 0xbab5);

        let mut trace = Vec::new();
        let mut phase = PhaseBuilder::new(topo);

        // Init: bodies and cells first-touched by their owners.
        for proc_i in 0..p {
            let proc = ProcId(proc_i as u16);
            let bchunk = bodies_per_proc * BODY_BYTES;
            phase.write_run(proc, bodies.at(proc_i * bchunk), bchunk / 64, 64);
            let cchunk = cells_per_proc * CELL_BYTES;
            phase.write_run(proc, cells.at(proc_i * cchunk), cchunk / 64, 64);
        }
        phase.interleave_into(&mut trace);

        for _step in 0..steps {
            // Tree build: each processor inserts its bodies — writes to its
            // own cell range plus contended writes near the root (cell 0..64),
            // which every processor updates.
            for proc_i in 0..p {
                let proc = ProcId(proc_i as u16);
                for c in 0..cells_per_proc {
                    let idx = proc_i * cells_per_proc + c;
                    phase.read(proc, cells.at(idx * CELL_BYTES));
                    phase.write(proc, cells.at(idx * CELL_BYTES + 8));
                }
                for _ in 0..16 {
                    let hot = rng.near(64.min(self.cells()));
                    phase.read(proc, cells.at(hot * CELL_BYTES));
                    phase.write(proc, cells.at(hot * CELL_BYTES + 8));
                }
            }
            phase.interleave_into(&mut trace);

            // Force computation: tree walks.
            for proc_i in 0..p {
                let proc = ProcId(proc_i as u16);
                for b in 0..bodies_per_proc {
                    let body = proc_i * bodies_per_proc + b;
                    let home_cell = body * self.cells() / self.bodies;
                    // Hot top-of-tree cells, shared by everyone.
                    for _ in 0..HOT_READS {
                        Self::read_cell(&mut phase, proc, &cells, rng.near(64.min(self.cells())));
                    }
                    // Locality-decaying neighbour cells around the body's
                    // region of the tree.
                    for _ in 0..NEAR_READS {
                        let d = rng.near(self.cells() / 2);
                        let idx = (home_cell + d) % self.cells();
                        Self::read_cell(&mut phase, proc, &cells, idx);
                    }
                    // Neighbour bodies.
                    for _ in 0..BODY_READS {
                        let d = rng.near(self.bodies / 4);
                        let idx = (body + d) % self.bodies;
                        phase.read(proc, bodies.at(idx * BODY_BYTES));
                    }
                    // Update own body: position/velocity in one block.
                    for field in 0..4 {
                        phase.write(proc, bodies.at(body * BODY_BYTES + field * 8));
                    }
                }
            }
            phase.interleave_into(&mut trace);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::test_support;
    use crate::TraceStats;
    use dsm_types::Geometry;

    #[test]
    fn kernel_sanity() {
        test_support::check_kernel(&Barnes::with_bodies(1 << 10));
    }

    #[test]
    fn scaling_behaviour() {
        test_support::check_scaling(&Barnes::with_bodies(1 << 10));
    }

    #[test]
    fn paper_footprint_matches_table3() {
        let mb = Barnes::default().shared_bytes() as f64 / (1024.0 * 1024.0);
        assert!((3.8..=4.0).contains(&mb), "footprint {mb:.2} MB vs 3.94");
    }

    #[test]
    fn read_dominated() {
        let topo = Topology::paper_default();
        let geo = Geometry::paper_default();
        let trace = Barnes::with_bodies(1 << 10).generate(&topo, Scale::full());
        let stats = TraceStats::compute(&trace, &geo, &topo);
        assert!(
            stats.write_fraction() < 0.25,
            "write fraction {}",
            stats.write_fraction()
        );
    }

    #[test]
    fn lower_locality_than_regular_kernels() {
        let topo = Topology::paper_default();
        let geo = Geometry::paper_default();
        let trace = Barnes::with_bodies(1 << 10).generate(&topo, Scale::full());
        let stats = TraceStats::compute(&trace, &geo, &topo);
        // Irregular walks revisit blocks via temporal, not spatial, reuse.
        // (The dev-size instance concentrates reuse; the bound is loose.)
        assert!(
            stats.refs_per_block() < 120.0,
            "refs/block {}",
            stats.refs_per_block()
        );
    }

    #[test]
    fn hot_cells_are_read_by_every_processor() {
        let topo = Topology::paper_default();
        let w = Barnes::with_bodies(1 << 10);
        let trace = w.generate(&topo, Scale::full());
        let bodies_bytes = w.bodies * BODY_BYTES;
        let bodies_pages = bodies_bytes.div_ceil(4096) * 4096;
        // Hot cells = first 64 cells of the cell region.
        let hot_lo = bodies_pages;
        let hot_hi = hot_lo + 64 * CELL_BYTES;
        let readers: std::collections::HashSet<_> = trace
            .iter()
            .filter(|r| r.addr.0 >= hot_lo && r.addr.0 < hot_hi)
            .map(|r| r.proc)
            .collect();
        assert_eq!(readers.len(), 32, "hot tree top not globally shared");
    }
}
