//! Supernodal sparse Cholesky trace kernel (SPLASH-2 `Cholesky`, tk15.0).
//!
//! The factor is stored as a sequence of supernode *panels* (groups of
//! columns with identical structure), each contiguous in memory. Tasks
//! stream long unit-stride runs out of ancestor panels into their own —
//! "large spatial locality" per the paper — but the task graph is an
//! irregular elimination tree, so which panels a processor reads is
//! data-dependent. The synthetic matrix reproduces tk15.0's ~21.4-MB
//! factor with a deterministic pseudo-irregular panel-size distribution.

use dsm_types::{MemRef, ProcId, Topology};

use crate::rng::TraceRng;
use crate::{Layout, PhaseBuilder, Scale, Workload};

const ELEM_BYTES: u64 = 8;
/// Ancestor panels read per supernode update.
const UPDATES_PER_NODE: u64 = 6;
/// Bytes streamed from each ancestor panel.
const STREAM_BYTES: u64 = 2048;
/// Bytes of the own panel rewritten per pass.
const OWN_BYTES: u64 = 4096;
const PASSES: u64 = 2;

/// The Cholesky trace kernel.
#[derive(Debug, Clone)]
pub struct Cholesky {
    supernodes: u64,
}

impl Cholesky {
    /// A factorization with `supernodes` supernode panels.
    ///
    /// # Panics
    ///
    /// Panics if `supernodes` is zero.
    #[must_use]
    pub fn with_supernodes(supernodes: u64) -> Self {
        assert!(supernodes > 0, "need at least one supernode");
        Cholesky { supernodes }
    }

    /// Panel size in bytes for supernode `s`: a deterministic
    /// pseudo-irregular distribution (width 4..32 columns, height 64..384
    /// rows) averaging ~31 KB.
    fn panel_bytes(&self, s: u64) -> u64 {
        let width = 4 + (s * 7) % 28;
        let height = 64 + (s * 13) % 320;
        width * height * ELEM_BYTES
    }

    fn panel_offsets(&self) -> Vec<u64> {
        let mut offsets = Vec::with_capacity(self.supernodes as usize + 1);
        let mut off = 0;
        for s in 0..self.supernodes {
            offsets.push(off);
            off += self.panel_bytes(s);
        }
        offsets.push(off);
        offsets
    }
}

impl Default for Cholesky {
    /// The paper's instance: tk15.0 (~21.4 MB of factor).
    fn default() -> Self {
        Cholesky::with_supernodes(845)
    }
}

impl Workload for Cholesky {
    fn name(&self) -> &'static str {
        "cholesky"
    }

    fn params(&self) -> String {
        format!("tk15.0-sized, {} supernodes", self.supernodes)
    }

    fn shared_bytes(&self) -> u64 {
        let total = *self.panel_offsets().last().expect("nonempty");
        let mut l = Layout::new(4096);
        let _ = l.region("factor", total);
        l.total_bytes()
    }

    fn generate(&self, topo: &Topology, scale: Scale) -> Vec<MemRef> {
        let offsets = self.panel_offsets();
        let total = *offsets.last().expect("nonempty");
        let mut l = Layout::new(4096);
        let factor = l.region("factor", total).expect("nonzero");
        let p = u64::from(topo.total_procs());
        let passes = scale.apply(PASSES);
        let depth = scale.apply(UPDATES_PER_NODE);
        let mut rng = TraceRng::for_workload("cholesky", 0xc401);

        let mut trace = Vec::new();
        let mut phase = PhaseBuilder::new(topo);

        // Init: supernode s first-touched by its task owner (s mod P).
        for s in 0..self.supernodes {
            let owner = ProcId((s % p) as u16);
            let bytes = self.panel_bytes(s);
            phase.write_run(owner, factor.at(offsets[s as usize]), bytes / 64, 64);
        }
        phase.interleave_into(&mut trace);

        // Factorization: supernodes in elimination order; each task streams
        // from a biased-random set of *earlier* panels (its elimination-tree
        // descendants) and rewrites the head of its own panel.
        for s in 0..self.supernodes {
            let owner = ProcId((s % p) as u16);
            if s > 0 {
                for _ in 0..depth {
                    let child = s - 1 - rng.near(s);
                    let child_bytes = self.panel_bytes(child);
                    let run = STREAM_BYTES.min(child_bytes);
                    phase.read_run(
                        owner,
                        factor.at(offsets[child as usize]),
                        run / ELEM_BYTES,
                        ELEM_BYTES,
                    );
                }
            }
            let own_bytes = self.panel_bytes(s);
            let run = OWN_BYTES.min(own_bytes);
            for _ in 0..passes {
                phase.read_run(
                    owner,
                    factor.at(offsets[s as usize]),
                    run / ELEM_BYTES,
                    ELEM_BYTES,
                );
                phase.write_run(
                    owner,
                    factor.at(offsets[s as usize]),
                    run / ELEM_BYTES,
                    ELEM_BYTES,
                );
            }
            // Tasks between supernodes are barrier-free in reality, but the
            // elimination order is a serialization point per panel.
            if s % 16 == 15 {
                phase.interleave_into(&mut trace);
            }
        }
        phase.interleave_into(&mut trace);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::test_support;
    use crate::TraceStats;
    use dsm_types::Geometry;

    #[test]
    fn kernel_sanity() {
        test_support::check_kernel(&Cholesky::with_supernodes(64));
    }

    #[test]
    fn scaling_behaviour() {
        test_support::check_scaling(&Cholesky::with_supernodes(64));
    }

    #[test]
    fn paper_footprint_near_table3() {
        let mb = Cholesky::default().shared_bytes() as f64 / (1024.0 * 1024.0);
        assert!((19.0..=23.5).contains(&mb), "footprint {mb:.2} MB vs 21.37");
    }

    #[test]
    fn panels_are_irregularly_sized() {
        let c = Cholesky::default();
        let sizes: std::collections::HashSet<u64> =
            (0..c.supernodes).map(|s| c.panel_bytes(s)).collect();
        assert!(
            sizes.len() > 50,
            "only {} distinct panel sizes",
            sizes.len()
        );
    }

    #[test]
    fn high_spatial_locality_in_streams() {
        let topo = Topology::paper_default();
        let geo = Geometry::paper_default();
        let trace = Cholesky::with_supernodes(64).generate(&topo, Scale::full());
        let stats = TraceStats::compute(&trace, &geo, &topo);
        // Streams are element-granularity over 64-byte blocks.
        assert!(
            stats.refs_per_block() > 5.0,
            "refs/block {}",
            stats.refs_per_block()
        );
    }

    #[test]
    fn ancestors_read_across_owners() {
        let topo = Topology::paper_default();
        let c = Cholesky::with_supernodes(64);
        let offsets = c.panel_offsets();
        let trace = c.generate(&topo, Scale::full());
        let owner_of = |addr: u64| -> u16 {
            let s = offsets.partition_point(|&o| o <= addr) as u64 - 1;
            ((s.min(c.supernodes - 1)) % 32) as u16
        };
        let cross = trace
            .iter()
            .filter(|r| !r.op.is_write() && owner_of(r.addr.0) != r.proc.0)
            .count();
        assert!(cross > 100, "cross-owner panel reads = {cross}");
    }
}
