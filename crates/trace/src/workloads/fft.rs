//! Six-step FFT trace kernel (SPLASH-2 `FFT`, 64K points).
//!
//! The shared data is three `sqrt(n) x sqrt(n)` complex-double matrices
//! (source, destination, twiddle factors). The six-step algorithm
//! alternates *blocked all-to-all transposes* — every processor reads
//! column tiles of every other processor's rows — with *local* row FFTs.
//! The result is the paper's "regular access patterns and large spatial
//! locality" profile: long unit-stride runs, page-dense working set.

use dsm_types::{MemRef, ProcId, Topology};

use crate::{Layout, PhaseBuilder, Scale, Workload};

const COMPLEX_BYTES: u64 = 16;
/// Transpose tile edge, in elements: 4 complex doubles = one cache block.
const TILE: u64 = 4;
/// One write per cache block is enough to first-touch a region.
const INIT_STRIDE: u64 = 64;

/// The FFT trace kernel.
///
/// # Example
///
/// ```
/// use dsm_trace::{Scale, Workload};
/// use dsm_trace::workloads::Fft;
/// use dsm_types::Topology;
///
/// let fft = Fft::with_points(1 << 8);
/// let trace = fft.generate(&Topology::paper_default(), Scale::full());
/// assert!(trace.len() > 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Fft {
    points: u64,
}

impl Fft {
    /// An FFT over `points` complex points; `points` must be a power of
    /// four (so the matrix is square) and at least 256.
    ///
    /// # Panics
    ///
    /// Panics if `points` is not a power of four or is below 256.
    #[must_use]
    pub fn with_points(points: u64) -> Self {
        assert!(
            points >= 256 && points.is_power_of_two() && points.trailing_zeros().is_multiple_of(2),
            "points must be a power of four >= 256, got {points}"
        );
        Fft { points }
    }

    /// Matrix edge: `sqrt(points)`.
    #[must_use]
    pub fn dim(&self) -> u64 {
        1 << (self.points.trailing_zeros() / 2)
    }
}

impl Default for Fft {
    /// The paper's instance: 64K points.
    fn default() -> Self {
        Fft::with_points(1 << 16)
    }
}

struct Matrices {
    src: crate::Region,
    dst: crate::Region,
    twiddle: crate::Region,
}

impl Fft {
    fn layout(&self) -> (Layout, Matrices) {
        let bytes = self.points * COMPLEX_BYTES;
        let mut l = Layout::new(4096);
        let src = l.region("src", bytes).expect("nonzero");
        let dst = l.region("dst", bytes).expect("nonzero");
        let twiddle = l.region("twiddle", bytes).expect("nonzero");
        (l, Matrices { src, dst, twiddle })
    }

    fn owner_of_row(&self, topo: &Topology, row: u64) -> ProcId {
        let rows_per_proc = (self.dim() / u64::from(topo.total_procs())).max(1);
        let p = (row / rows_per_proc).min(u64::from(topo.total_procs()) - 1);
        ProcId(p as u16)
    }

    /// Blocked transpose `to[i][j] = from[j][i]`: the owner of each
    /// destination row tile reads a (remote) source tile and writes its own
    /// rows, `TILE` contiguous elements at a time.
    fn transpose(
        &self,
        topo: &Topology,
        phase: &mut PhaseBuilder,
        from: &crate::Region,
        to: &crate::Region,
    ) {
        let m = self.dim();
        for ti in (0..m).step_by(TILE as usize) {
            let owner = self.owner_of_row(topo, ti);
            for tj in (0..m).step_by(TILE as usize) {
                // Read source tile rows tj..tj+TILE, columns ti..ti+TILE.
                for r in tj..tj + TILE {
                    phase.read_run(
                        owner,
                        from.elem(r * m + ti, COMPLEX_BYTES),
                        TILE,
                        COMPLEX_BYTES,
                    );
                }
                // Write destination tile rows ti..ti+TILE, columns tj..tj+TILE.
                for r in ti..ti + TILE {
                    phase.write_run(
                        owner,
                        to.elem(r * m + tj, COMPLEX_BYTES),
                        TILE,
                        COMPLEX_BYTES,
                    );
                }
            }
        }
    }

    /// `stages` in-place FFT passes over each row: entirely local,
    /// unit-stride reads and writes; the first stage also streams the
    /// twiddle row.
    fn row_ffts(
        &self,
        topo: &Topology,
        phase: &mut PhaseBuilder,
        data: &crate::Region,
        twiddle: &crate::Region,
        stages: u64,
    ) {
        let m = self.dim();
        for row in 0..m {
            let owner = self.owner_of_row(topo, row);
            for stage in 0..stages {
                if stage == 0 {
                    phase.read_run(
                        owner,
                        twiddle.elem(row * m, COMPLEX_BYTES),
                        m,
                        COMPLEX_BYTES,
                    );
                }
                phase.read_run(owner, data.elem(row * m, COMPLEX_BYTES), m, COMPLEX_BYTES);
                phase.write_run(owner, data.elem(row * m, COMPLEX_BYTES), m, COMPLEX_BYTES);
            }
        }
    }

    fn init(&self, topo: &Topology, phase: &mut PhaseBuilder, mats: &Matrices) {
        let m = self.dim();
        let row_bytes = m * COMPLEX_BYTES;
        for row in 0..m {
            let owner = self.owner_of_row(topo, row);
            for region in [&mats.src, &mats.dst, &mats.twiddle] {
                let base = region.at(row * row_bytes);
                phase.write_run(owner, base, row_bytes / INIT_STRIDE, INIT_STRIDE);
            }
        }
    }
}

impl Workload for Fft {
    fn name(&self) -> &'static str {
        "fft"
    }

    fn params(&self) -> String {
        format!("{}K points", self.points / 1024)
    }

    fn shared_bytes(&self) -> u64 {
        self.layout().0.total_bytes()
    }

    fn generate(&self, topo: &Topology, scale: Scale) -> Vec<MemRef> {
        let (_, mats) = self.layout();
        let stages = scale.apply(u64::from(self.dim().trailing_zeros()));
        let mut trace = Vec::new();
        let mut phase = PhaseBuilder::new(topo);

        self.init(topo, &mut phase, &mats);
        phase.interleave_into(&mut trace);

        // Step 1: transpose src -> dst (all-to-all).
        self.transpose(topo, &mut phase, &mats.src, &mats.dst);
        phase.interleave_into(&mut trace);
        // Step 2: row FFTs on dst (local), streaming twiddles.
        self.row_ffts(topo, &mut phase, &mats.dst, &mats.twiddle, stages);
        phase.interleave_into(&mut trace);
        // Step 3: transpose dst -> src.
        self.transpose(topo, &mut phase, &mats.dst, &mats.src);
        phase.interleave_into(&mut trace);
        // Step 4: row FFTs on src.
        self.row_ffts(topo, &mut phase, &mats.src, &mats.twiddle, stages);
        phase.interleave_into(&mut trace);
        // Step 5: final transpose src -> dst.
        self.transpose(topo, &mut phase, &mats.src, &mats.dst);
        phase.interleave_into(&mut trace);

        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::test_support;
    use crate::TraceStats;
    use dsm_types::Geometry;

    #[test]
    fn kernel_sanity() {
        test_support::check_kernel(&Fft::with_points(1 << 10));
    }

    #[test]
    fn scaling_behaviour() {
        test_support::check_scaling(&Fft::with_points(1 << 10));
    }

    #[test]
    fn paper_footprint_near_table3() {
        let mb = Fft::default().shared_bytes() as f64 / (1024.0 * 1024.0);
        // Table 3 reports 3.54 MB; three 1-MB matrices dominate.
        assert!((2.9..=3.6).contains(&mb), "footprint {mb:.2} MB");
    }

    #[test]
    #[should_panic(expected = "power of four")]
    fn rejects_non_square_sizes() {
        let _ = Fft::with_points(1 << 9);
    }

    #[test]
    fn high_spatial_locality() {
        let topo = Topology::paper_default();
        let geo = Geometry::paper_default();
        let w = Fft::with_points(1 << 10);
        let trace = w.generate(&topo, Scale::full());
        let stats = TraceStats::compute(&trace, &geo, &topo);
        // Regular kernel: many references per touched block.
        assert!(
            stats.refs_per_block() > 4.0,
            "refs/block = {}",
            stats.refs_per_block()
        );
    }

    #[test]
    fn transposes_generate_cross_processor_reads() {
        // Destination-row owners read source rows owned by other procs.
        let topo = Topology::paper_default();
        let w = Fft::with_points(1 << 10);
        let (_, mats) = w.layout();
        let trace = w.generate(&topo, Scale::full());
        let m = w.dim();
        let cross = trace
            .iter()
            .filter(|r| !r.op.is_write() && mats.src.contains(r.addr))
            .filter(|r| {
                let elem = (r.addr.0 - mats.src.base().0) / COMPLEX_BYTES;
                w.owner_of_row(&topo, elem / m) != r.proc
            })
            .count();
        assert!(cross > 0, "no cross-processor transpose reads");
    }

    #[test]
    fn dim_is_square_root() {
        assert_eq!(Fft::with_points(1 << 16).dim(), 256);
        assert_eq!(Fft::with_points(1 << 10).dim(), 32);
    }
}
