//! Adaptive fast-multipole trace kernel (SPLASH-2 `FMM`, 16K bodies).
//!
//! FMM's shared state is dominated by per-cell expansion coefficients:
//! 4096 cells x ~6.8 KB puts the footprint at Table 3's 29.23 MB — an
//! order of magnitude beyond any cluster's SRAM. Interaction-list
//! translations read a few blocks from each of ~27 pseudo-randomly chosen
//! cells, giving a **large, sparse remote working set with irregular
//! access** — with Radix and Raytrace, the class of applications where the
//! paper finds DRAM NCs still win and page caches fragment.

use dsm_types::{MemRef, ProcId, Topology};

use crate::rng::TraceRng;
use crate::{Layout, PhaseBuilder, Scale, Workload};

const BODY_BYTES: u64 = 128;
/// Expansion coefficients per cell; 109 cache blocks.
const CELL_BYTES: u64 = 6976;
const TIMESTEPS: u64 = 2;
/// Interaction-list length (the well-separated cells of a 2D FMM).
const INTERACTIONS: u64 = 27;
/// Bytes of a remote cell's expansion read per translation.
const TRANSLATION_BYTES: u64 = 256;

/// The FMM trace kernel.
#[derive(Debug, Clone)]
pub struct Fmm {
    bodies: u64,
}

impl Fmm {
    /// FMM over `bodies` bodies; the tree has `bodies / 4` cells.
    ///
    /// # Panics
    ///
    /// Panics if `bodies` is not a positive multiple of 128.
    #[must_use]
    pub fn with_bodies(bodies: u64) -> Self {
        assert!(
            bodies > 0 && bodies.is_multiple_of(128),
            "body count {bodies} must be a positive multiple of 128"
        );
        Fmm { bodies }
    }

    fn cells(&self) -> u64 {
        self.bodies / 4
    }
}

impl Default for Fmm {
    /// The paper's instance: 16K bodies.
    fn default() -> Self {
        Fmm::with_bodies(1 << 14)
    }
}

impl Workload for Fmm {
    fn name(&self) -> &'static str {
        "fmm"
    }

    fn params(&self) -> String {
        format!("{}K bodies", self.bodies >> 10)
    }

    fn shared_bytes(&self) -> u64 {
        let mut l = Layout::new(4096);
        let _ = l.region("bodies", self.bodies * BODY_BYTES);
        let _ = l.region("cells", self.cells() * CELL_BYTES);
        l.total_bytes()
    }

    fn generate(&self, topo: &Topology, scale: Scale) -> Vec<MemRef> {
        let mut l = Layout::new(4096);
        let bodies = l
            .region("bodies", self.bodies * BODY_BYTES)
            .expect("nonzero");
        let cells = l
            .region("cells", self.cells() * CELL_BYTES)
            .expect("nonzero");
        let p = u64::from(topo.total_procs());
        let bodies_per_proc = self.bodies / p;
        let cells_per_proc = self.cells() / p;
        let steps = scale.apply(TIMESTEPS);
        let mut rng = TraceRng::for_workload("fmm", 0xf33d);

        let mut trace = Vec::new();
        let mut phase = PhaseBuilder::new(topo);

        // Init by owner, one write per block.
        for proc_i in 0..p {
            let proc = ProcId(proc_i as u16);
            let bchunk = bodies_per_proc * BODY_BYTES;
            phase.write_run(proc, bodies.at(proc_i * bchunk), bchunk / 64, 64);
            let cchunk = cells_per_proc * CELL_BYTES;
            phase.write_run(proc, cells.at(proc_i * cchunk), cchunk / 64, 64);
        }
        phase.interleave_into(&mut trace);

        for _step in 0..steps {
            // Upward pass: each owner forms its cells' multipole expansions
            // (local, sequential over the expansion).
            for proc_i in 0..p {
                let proc = ProcId(proc_i as u16);
                for c in 0..cells_per_proc {
                    let base = (proc_i * cells_per_proc + c) * CELL_BYTES;
                    phase.read_run(proc, cells.at(base), 8, 64);
                    phase.write_run(proc, cells.at(base + 512), 8, 64);
                }
            }
            phase.interleave_into(&mut trace);

            // Interaction phase: multipole-to-local translations read a few
            // blocks from each of ~27 scattered cells, then accumulate into
            // the local expansion.
            for proc_i in 0..p {
                let proc = ProcId(proc_i as u16);
                for c in 0..cells_per_proc {
                    let own = proc_i * cells_per_proc + c;
                    for _ in 0..INTERACTIONS {
                        // Mix of tree-neighbourhood locality and far cells.
                        let partner = if rng.chance(0.7) {
                            (own + rng.near(self.cells() / 4)) % self.cells()
                        } else {
                            rng.below(self.cells())
                        };
                        phase.read_run(
                            proc,
                            cells.at(partner * CELL_BYTES),
                            TRANSLATION_BYTES / 64,
                            64,
                        );
                    }
                    phase.write_run(proc, cells.at(own * CELL_BYTES + 1024), 8, 64);
                }
            }
            phase.interleave_into(&mut trace);

            // Downward/body pass: evaluate local expansions at own bodies.
            for proc_i in 0..p {
                let proc = ProcId(proc_i as u16);
                for b in 0..bodies_per_proc {
                    let body = proc_i * bodies_per_proc + b;
                    let cell = body * self.cells() / self.bodies;
                    phase.read_run(proc, cells.at(cell * CELL_BYTES + 1024), 4, 64);
                    phase.write(proc, bodies.at(body * BODY_BYTES));
                    phase.write(proc, bodies.at(body * BODY_BYTES + 8));
                }
            }
            phase.interleave_into(&mut trace);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::test_support;
    use crate::TraceStats;
    use dsm_types::Geometry;

    #[test]
    fn kernel_sanity() {
        test_support::check_kernel(&Fmm::with_bodies(1 << 10));
    }

    #[test]
    fn scaling_behaviour() {
        test_support::check_scaling(&Fmm::with_bodies(1 << 10));
    }

    #[test]
    fn paper_footprint_matches_table3() {
        let mb = Fmm::default().shared_bytes() as f64 / (1024.0 * 1024.0);
        assert!((28.0..=30.0).contains(&mb), "footprint {mb:.2} MB vs 29.23");
    }

    #[test]
    fn working_set_is_large_and_sparse() {
        let topo = Topology::paper_default();
        let geo = Geometry::paper_default();
        let w = Fmm::with_bodies(1 << 11);
        let trace = w.generate(&topo, Scale::full());
        let stats = TraceStats::compute(&trace, &geo, &topo);
        // Most of the footprint is touched...
        assert!(
            stats.footprint_bytes(&geo) * 2 > w.shared_bytes(),
            "only {} of {} bytes touched",
            stats.footprint_bytes(&geo),
            w.shared_bytes()
        );
        // ...but each block is revisited only a handful of times.
        assert!(
            stats.refs_per_block() < 25.0,
            "refs/block {}",
            stats.refs_per_block()
        );
    }

    #[test]
    fn interaction_reads_cross_ownership() {
        let topo = Topology::paper_default();
        let w = Fmm::with_bodies(1 << 11);
        let trace = w.generate(&topo, Scale::full());
        let bodies_span = (w.bodies * BODY_BYTES).div_ceil(4096) * 4096;
        let cells_per_proc = w.cells() / 32;
        let cross = trace
            .iter()
            .filter(|r| !r.op.is_write() && r.addr.0 >= bodies_span)
            .filter(|r| {
                let cell = (r.addr.0 - bodies_span) / CELL_BYTES;
                let owner = (cell / cells_per_proc).min(31) as u16;
                owner != r.proc.0
            })
            .count();
        assert!(cross > 1000, "cross-owner interaction reads = {cross}");
    }
}
