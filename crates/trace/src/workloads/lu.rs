//! Blocked dense LU trace kernel (SPLASH-2 `LU`, 512 x 512).
//!
//! The matrix is stored block-major (each 16x16 block contiguous — the
//! SPLASH-2 "optimized" layout that gives blocks page-level locality) and
//! blocks are 2D-scattered over the processors. Phase `k` factors the
//! diagonal block, updates the perimeter row/column (owners read the
//! diagonal block remotely), then the interior (owners read one perimeter
//! row block and one perimeter column block). Regular, high spatial
//! locality, with widely-read-shared perimeter blocks.
//!
//! The paper's first-touch fix for LU (initialization by the eventual
//! owner, not the master processor) is built in: the init phase writes
//! every block from its owner.

use dsm_types::{MemRef, ProcId, Topology};

use crate::{Layout, PhaseBuilder, Region, Scale, Workload};

const ELEM_BYTES: u64 = 8;
/// Extra shared state (pivots, barriers, global sums): 160 KB, bringing the
/// 512x512 instance to Table 3's 2.16 MB.
const GLOBALS_BYTES: u64 = 160 * 1024;

/// The LU trace kernel.
#[derive(Debug, Clone)]
pub struct Lu {
    n: u64,
    block: u64,
}

impl Lu {
    /// LU on an `n x n` matrix of doubles with 16 x 16 blocks.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of 16.
    #[must_use]
    pub fn with_matrix(n: u64) -> Self {
        assert!(
            n > 0 && n.is_multiple_of(16),
            "matrix size {n} must be a multiple of 16"
        );
        Lu { n, block: 16 }
    }

    /// Blocks per matrix edge.
    #[must_use]
    pub fn blocks_per_edge(&self) -> u64 {
        self.n / self.block
    }

    fn elems_per_block(&self) -> u64 {
        self.block * self.block
    }

    /// 2D-scatter ownership: `owner(I, J) = (I mod pr) * pc + (J mod pc)`.
    fn owner(&self, topo: &Topology, bi: u64, bj: u64) -> ProcId {
        let p = u64::from(topo.total_procs());
        // pr = largest power of two with pr*pr <= p (pr <= pc).
        let mut pr = 1u64;
        while pr * pr * 4 <= p {
            pr *= 2;
        }
        let pc = (p / pr).max(1);
        let owner = (bi % pr) * pc + (bj % pc);
        ProcId((owner % p) as u16)
    }

    /// Byte offset of block `(bi, bj)` in the block-major matrix region.
    fn block_base(&self, bi: u64, bj: u64) -> u64 {
        (bi * self.blocks_per_edge() + bj) * self.elems_per_block() * ELEM_BYTES
    }

    fn read_block(&self, phase: &mut PhaseBuilder, proc: ProcId, m: &Region, bi: u64, bj: u64) {
        phase.read_run(
            proc,
            m.at(self.block_base(bi, bj)),
            self.elems_per_block(),
            ELEM_BYTES,
        );
    }

    fn update_block(&self, phase: &mut PhaseBuilder, proc: ProcId, m: &Region, bi: u64, bj: u64) {
        let base = m.at(self.block_base(bi, bj));
        phase.read_run(proc, base, self.elems_per_block(), ELEM_BYTES);
        phase.write_run(proc, base, self.elems_per_block(), ELEM_BYTES);
    }
}

impl Default for Lu {
    /// The paper's instance: 512 x 512.
    fn default() -> Self {
        Lu::with_matrix(512)
    }
}

impl Workload for Lu {
    fn name(&self) -> &'static str {
        "lu"
    }

    fn params(&self) -> String {
        format!("{} x {}", self.n, self.n)
    }

    fn shared_bytes(&self) -> u64 {
        let mut l = Layout::new(4096);
        let _ = l.region("matrix", self.n * self.n * ELEM_BYTES);
        let _ = l.region("globals", GLOBALS_BYTES);
        l.total_bytes()
    }

    fn generate(&self, topo: &Topology, scale: Scale) -> Vec<MemRef> {
        let mut l = Layout::new(4096);
        let matrix = l
            .region("matrix", self.n * self.n * ELEM_BYTES)
            .expect("nonzero");
        let globals = l.region("globals", GLOBALS_BYTES).expect("nonzero");
        let nb = self.blocks_per_edge();
        // Interior-update decimation factor: scale < 1 processes every
        // m-th interior block, preserving every phase and the full matrix
        // footprint (the init phase touches everything).
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let decimate = ((1.0 / scale.factor()).round() as u64).max(1);

        let mut trace = Vec::new();
        let mut phase = PhaseBuilder::new(topo);

        // Init: every block first-touched by its owner (the paper's fix).
        for bi in 0..nb {
            for bj in 0..nb {
                let owner = self.owner(topo, bi, bj);
                let base = matrix.at(self.block_base(bi, bj));
                let bytes = self.elems_per_block() * ELEM_BYTES;
                phase.write_run(owner, base, bytes / 64, 64);
            }
        }
        // Globals first-touched by processor 0 (master).
        phase.write_run(ProcId(0), globals.base(), GLOBALS_BYTES / 64, 64);
        phase.interleave_into(&mut trace);

        for k in 0..nb {
            // Factor the diagonal block.
            let dk = self.owner(topo, k, k);
            self.update_block(&mut phase, dk, &matrix, k, k);
            phase.read(dk, globals.at((k * 8) % GLOBALS_BYTES));
            phase.interleave_into(&mut trace);

            // Perimeter: column blocks (i, k) and row blocks (k, j) read
            // the diagonal block (remote for most owners) and update
            // themselves.
            for i in k + 1..nb {
                let o = self.owner(topo, i, k);
                self.read_block(&mut phase, o, &matrix, k, k);
                self.update_block(&mut phase, o, &matrix, i, k);

                let o = self.owner(topo, k, i);
                self.read_block(&mut phase, o, &matrix, k, k);
                self.update_block(&mut phase, o, &matrix, k, i);
            }
            phase.interleave_into(&mut trace);

            // Interior: block (i, j) reads perimeter blocks (i, k), (k, j).
            for i in k + 1..nb {
                for j in k + 1..nb {
                    if (i * 31 + j * 17 + k) % decimate != 0 {
                        continue;
                    }
                    let o = self.owner(topo, i, j);
                    self.read_block(&mut phase, o, &matrix, i, k);
                    self.read_block(&mut phase, o, &matrix, k, j);
                    self.update_block(&mut phase, o, &matrix, i, j);
                }
            }
            phase.interleave_into(&mut trace);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::test_support;
    use crate::TraceStats;
    use dsm_types::Geometry;

    #[test]
    fn kernel_sanity() {
        test_support::check_kernel(&Lu::with_matrix(128));
    }

    #[test]
    fn scaling_behaviour() {
        test_support::check_scaling(&Lu::with_matrix(128));
    }

    #[test]
    fn paper_footprint_matches_table3() {
        let mb = Lu::default().shared_bytes() as f64 / (1024.0 * 1024.0);
        assert!((2.1..=2.2).contains(&mb), "footprint {mb:.3} MB vs 2.16");
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn rejects_unaligned_matrix() {
        let _ = Lu::with_matrix(100);
    }

    #[test]
    fn ownership_is_scattered() {
        let topo = Topology::paper_default();
        let lu = Lu::with_matrix(512);
        let mut owners = std::collections::HashSet::new();
        for bi in 0..lu.blocks_per_edge() {
            for bj in 0..lu.blocks_per_edge() {
                owners.insert(lu.owner(&topo, bi, bj));
            }
        }
        assert_eq!(owners.len(), 32, "all processors own blocks");
    }

    #[test]
    fn high_spatial_locality() {
        let topo = Topology::paper_default();
        let geo = Geometry::paper_default();
        let trace = Lu::with_matrix(128).generate(&topo, Scale::full());
        let stats = TraceStats::compute(&trace, &geo, &topo);
        assert!(
            stats.refs_per_block() > 6.0,
            "refs/block = {}",
            stats.refs_per_block()
        );
    }

    #[test]
    fn diagonal_block_is_widely_read() {
        // Many distinct processors read block (0, 0) during phase 0.
        let topo = Topology::paper_default();
        let lu = Lu::with_matrix(256);
        let trace = lu.generate(&topo, Scale::full());
        let b00_end = lu.elems_per_block() * ELEM_BYTES;
        let readers: std::collections::HashSet<_> = trace
            .iter()
            .filter(|r| !r.op.is_write() && r.addr.0 < b00_end)
            .map(|r| r.proc)
            .collect();
        assert!(
            readers.len() > 4,
            "only {} readers of the pivot block",
            readers.len()
        );
    }
}
