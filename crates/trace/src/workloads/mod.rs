//! The eight SPLASH-2-style trace kernels (see the crate docs for the
//! paper-to-kernel substitution rationale).

mod barnes;
mod cholesky;
mod fft;
mod fmm;
mod lu;
mod ocean;
mod radix;
mod raytrace;

pub use barnes::Barnes;
pub use cholesky::Cholesky;
pub use fft::Fft;
pub use fmm::Fmm;
pub use lu::Lu;
pub use ocean::Ocean;
pub use radix::Radix;
pub use raytrace::Raytrace;

#[cfg(test)]
pub(crate) mod test_support {
    use dsm_types::{Geometry, Topology};

    use crate::{Scale, TraceStats, Workload};

    /// Shared sanity checks every kernel must satisfy.
    pub fn check_kernel(w: &dyn Workload) {
        let topo = Topology::paper_default();
        let trace = w.generate(&topo, Scale::new(0.5).unwrap());
        assert!(!trace.is_empty(), "{} produced an empty trace", w.name());

        // Determinism.
        let again = w.generate(&topo, Scale::new(0.5).unwrap());
        assert_eq!(trace, again, "{} is not deterministic", w.name());

        let geo = Geometry::paper_default();
        let stats = TraceStats::compute(&trace, &geo, &topo);

        // Every processor participates.
        for (p, n) in stats.per_proc.iter().enumerate() {
            assert!(*n > 0, "{}: processor {p} issued no references", w.name());
        }

        // The trace stays inside the declared footprint (allow one page of
        // rounding per region; kernels have at most 64 regions).
        assert!(
            stats.footprint_bytes(&geo) <= w.shared_bytes() + 64 * geo.page_bytes(),
            "{}: touched {} bytes, declared {}",
            w.name(),
            stats.footprint_bytes(&geo),
            w.shared_bytes()
        );

        // Both reads and writes occur.
        assert!(
            stats.reads > 0 && stats.writes > 0,
            "{}: degenerate mix",
            w.name()
        );
    }

    /// Checks that scaling down shortens the trace without shrinking the
    /// touched footprint by more than a factor of two (working sets must
    /// survive scaling).
    pub fn check_scaling(w: &dyn Workload) {
        let topo = Topology::paper_default();
        let geo = Geometry::paper_default();
        let full = w.generate(&topo, Scale::full());
        let half = w.generate(&topo, Scale::new(0.4).unwrap());
        assert!(
            half.len() < full.len(),
            "{}: scale 0.4 did not shorten the trace",
            w.name()
        );
        let fs = TraceStats::compute(&full, &geo, &topo);
        let hs = TraceStats::compute(&half, &geo, &topo);
        assert!(
            hs.pages_touched * 2 >= fs.pages_touched,
            "{}: scaling collapsed the footprint ({} vs {} pages)",
            w.name(),
            hs.pages_touched,
            fs.pages_touched
        );
    }
}
