//! Ocean simulation trace kernel (SPLASH-2 `Ocean`, 258 x 258).
//!
//! A stack of `(g x g)` double grids (29 of them at the paper's size,
//! matching the 15.52-MB footprint) partitioned by contiguous row bands.
//! Each timestep runs red-black Gauss-Seidel sweeps over a rotating subset
//! of grids: 5-point stencils with unit-stride inner loops — regular and
//! page-dense, with remote reads confined to the band-boundary rows.

use dsm_types::{MemRef, ProcId, Topology};

use crate::{Layout, PhaseBuilder, Region, Scale, Workload};

const ELEM_BYTES: u64 = 8;
const GRIDS: u64 = 29;
const GRIDS_PER_STEP: u64 = 4;
const TIMESTEPS: u64 = 2;

/// The Ocean trace kernel.
#[derive(Debug, Clone)]
pub struct Ocean {
    g: u64,
}

impl Ocean {
    /// Ocean on `g x g` grids (including the boundary ring).
    ///
    /// # Panics
    ///
    /// Panics if `g < 18` (too small to band-partition).
    #[must_use]
    pub fn with_grid(g: u64) -> Self {
        assert!(g >= 18, "grid edge {g} too small");
        Ocean { g }
    }

    fn grid_bytes(&self) -> u64 {
        self.g * self.g * ELEM_BYTES
    }

    fn owner_of_row(&self, topo: &Topology, row: u64) -> ProcId {
        let p = u64::from(topo.total_procs());
        let rows_per_proc = (self.g / p).max(1);
        ProcId(((row / rows_per_proc).min(p - 1)) as u16)
    }

    fn point(&self, grid: &Region, gi: u64, i: u64, j: u64) -> dsm_types::Addr {
        grid.at(gi * self.grid_bytes() + (i * self.g + j) * ELEM_BYTES)
    }

    /// One red-black half-sweep of grid `gi`: each interior point of the
    /// given parity reads its 4 neighbours and itself, then writes itself.
    fn half_sweep(
        &self,
        topo: &Topology,
        phase: &mut PhaseBuilder,
        grid: &Region,
        gi: u64,
        color: u64,
    ) {
        for i in 1..self.g - 1 {
            let owner = self.owner_of_row(topo, i);
            for j in 1..self.g - 1 {
                if (i + j) % 2 != color {
                    continue;
                }
                phase.read(owner, self.point(grid, gi, i, j));
                phase.read(owner, self.point(grid, gi, i - 1, j));
                phase.read(owner, self.point(grid, gi, i + 1, j));
                phase.read(owner, self.point(grid, gi, i, j - 1));
                phase.read(owner, self.point(grid, gi, i, j + 1));
                phase.write(owner, self.point(grid, gi, i, j));
            }
        }
    }
}

impl Default for Ocean {
    /// The paper's instance: 258 x 258.
    fn default() -> Self {
        Ocean::with_grid(258)
    }
}

impl Workload for Ocean {
    fn name(&self) -> &'static str {
        "ocean"
    }

    fn params(&self) -> String {
        format!("{} x {}", self.g, self.g)
    }

    fn shared_bytes(&self) -> u64 {
        let mut l = Layout::new(4096);
        let _ = l.region("grids", GRIDS * self.grid_bytes());
        l.total_bytes()
    }

    fn generate(&self, topo: &Topology, scale: Scale) -> Vec<MemRef> {
        let mut l = Layout::new(4096);
        let grids = l
            .region("grids", GRIDS * self.grid_bytes())
            .expect("nonzero");
        let steps = scale.apply(TIMESTEPS);

        let mut trace = Vec::new();
        let mut phase = PhaseBuilder::new(topo);

        // Init: every grid first-touched row-band by row-band by its owner
        // (one write per cache block).
        for gi in 0..GRIDS {
            for i in 0..self.g {
                let owner = self.owner_of_row(topo, i);
                let row_base = grids.at(gi * self.grid_bytes() + i * self.g * ELEM_BYTES);
                phase.write_run(owner, row_base, (self.g * ELEM_BYTES) / 64, 64);
            }
        }
        phase.interleave_into(&mut trace);

        for step in 0..steps {
            for k in 0..GRIDS_PER_STEP {
                let gi = (step * GRIDS_PER_STEP + k) % GRIDS;
                self.half_sweep(topo, &mut phase, &grids, gi, 0);
                phase.interleave_into(&mut trace);
                self.half_sweep(topo, &mut phase, &grids, gi, 1);
                phase.interleave_into(&mut trace);
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::test_support;
    use crate::TraceStats;
    use dsm_types::Geometry;

    #[test]
    fn kernel_sanity() {
        test_support::check_kernel(&Ocean::with_grid(34));
    }

    #[test]
    fn scaling_behaviour() {
        test_support::check_scaling(&Ocean::with_grid(34));
    }

    #[test]
    fn paper_footprint_matches_table3() {
        let mb = Ocean::default().shared_bytes() as f64 / (1024.0 * 1024.0);
        assert!((14.5..=15.8).contains(&mb), "footprint {mb:.2} MB vs 15.52");
    }

    #[test]
    fn stencil_reads_cross_band_boundaries() {
        let topo = Topology::paper_default();
        let w = Ocean::with_grid(66);
        let trace = w.generate(&topo, Scale::full());
        // A reference is cross-band when its row's owner differs from the
        // issuing processor (the i-1 / i+1 stencil neighbours at band
        // edges).
        let cross = trace
            .iter()
            .filter(|r| !r.op.is_write())
            .filter(|r| {
                let off = r.addr.0 % w.grid_bytes();
                let row = off / (w.g * ELEM_BYTES);
                w.owner_of_row(&topo, row) != r.proc
            })
            .count();
        assert!(cross > 0, "no boundary-row communication");
    }

    #[test]
    fn writes_stay_local_to_band_owner() {
        let topo = Topology::paper_default();
        let w = Ocean::with_grid(66);
        let trace = w.generate(&topo, Scale::full());
        for r in trace.iter().filter(|r| r.op.is_write()) {
            let off = r.addr.0 % w.grid_bytes();
            let row = off / (w.g * ELEM_BYTES);
            assert_eq!(w.owner_of_row(&topo, row), r.proc, "foreign write at {r}");
        }
    }

    #[test]
    fn very_high_spatial_locality() {
        let topo = Topology::paper_default();
        let geo = Geometry::paper_default();
        let trace = Ocean::with_grid(66).generate(&topo, Scale::full());
        let stats = TraceStats::compute(&trace, &geo, &topo);
        assert!(
            stats.refs_per_block() > 5.0,
            "refs/block = {}",
            stats.refs_per_block()
        );
    }
}
