//! Radix sort trace kernel (SPLASH-2 `Radix`, 1M integers).
//!
//! The paper's stress case for page caches: the permutation phase writes
//! each key to its sorted position in the destination array, and with
//! random keys consecutive writes jump between 1024 widely-separated
//! buckets — **irregular, write-dominated, very low spatial locality**, a
//! large sparse remote working set. Radix is where the victim cache and
//! the `vp`/`vxp` page-indexed organizations pay off in the paper.

use dsm_types::{MemRef, ProcId, Topology};

use crate::rng::TraceRng;
use crate::{Layout, PhaseBuilder, Scale, Workload};

const KEY_BYTES: u64 = 4;
const RADIX_BITS: u32 = 10;
const BUCKETS: u64 = 1 << RADIX_BITS;
const KEY_BITS: u32 = 20;
const PASSES: u64 = 2;
const HIST_ENTRY_BYTES: u64 = 8;

/// The Radix trace kernel.
#[derive(Debug, Clone)]
pub struct Radix {
    keys: u64,
}

impl Radix {
    /// Sorts `keys` random integers.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is not a positive multiple of 1024.
    #[must_use]
    pub fn with_keys(keys: u64) -> Self {
        assert!(
            keys > 0 && keys.is_multiple_of(BUCKETS),
            "key count {keys} must be a positive multiple of {BUCKETS}"
        );
        Radix { keys }
    }
}

impl Default for Radix {
    /// The paper's instance: 1M integers.
    fn default() -> Self {
        Radix::with_keys(1 << 20)
    }
}

struct Regions {
    key0: crate::Region,
    key1: crate::Region,
    local_hist: crate::Region,
    global_hist: crate::Region,
}

impl Radix {
    fn layout(&self, topo: &Topology) -> (Layout, Regions) {
        let p = u64::from(topo.total_procs());
        let mut l = Layout::new(4096);
        let key0 = l.region("key0", self.keys * KEY_BYTES).expect("nonzero");
        let key1 = l.region("key1", self.keys * KEY_BYTES).expect("nonzero");
        let local_hist = l
            .region("local_hist", p * BUCKETS * HIST_ENTRY_BYTES)
            .expect("nonzero");
        // Global rank/prefix trees; sized as in the SPLASH-2 code (a
        // bucket-by-processor matrix plus prefix levels).
        let global_hist = l
            .region("global_hist", 2 * p * BUCKETS * HIST_ENTRY_BYTES)
            .expect("nonzero");
        (
            l,
            Regions {
                key0,
                key1,
                local_hist,
                global_hist,
            },
        )
    }

    fn digit(key: u64, pass: u64) -> u64 {
        (key >> (pass as u32 * RADIX_BITS)) & (BUCKETS - 1)
    }

    /// Deterministic key value for index `i` (the same value the init and
    /// every pass observe).
    fn key_value(rng_base: &mut TraceRng) -> u64 {
        rng_base.below(1 << KEY_BITS)
    }
}

impl Workload for Radix {
    fn name(&self) -> &'static str {
        "radix"
    }

    fn params(&self) -> String {
        if self.keys >= 1 << 20 {
            format!("{}M integers", self.keys >> 20)
        } else {
            format!("{}K integers", self.keys >> 10)
        }
    }

    fn shared_bytes(&self) -> u64 {
        self.layout(&Topology::paper_default()).0.total_bytes()
    }

    fn generate(&self, topo: &Topology, scale: Scale) -> Vec<MemRef> {
        let (_, regions) = self.layout(topo);
        let p = u64::from(topo.total_procs());
        let keys_per_proc = self.keys / p;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let decimate = ((1.0 / scale.factor()).round() as u64).max(1);

        // Materialize the key values once so every pass sees the same
        // permutation targets.
        let mut rng = TraceRng::for_workload("radix", 0x5eed);
        let values: Vec<u64> = (0..self.keys).map(|_| Self::key_value(&mut rng)).collect();

        let mut trace = Vec::new();
        let mut phase = PhaseBuilder::new(topo);

        // Init: each processor writes its contiguous key chunk in both
        // arrays and its histogram rows.
        for proc_i in 0..p {
            let proc = ProcId(proc_i as u16);
            let chunk = keys_per_proc * KEY_BYTES;
            phase.write_run(proc, regions.key0.at(proc_i * chunk), chunk / 64, 64);
            phase.write_run(proc, regions.key1.at(proc_i * chunk), chunk / 64, 64);
            let hrow = BUCKETS * HIST_ENTRY_BYTES;
            phase.write_run(proc, regions.local_hist.at(proc_i * hrow), hrow / 64, 64);
            phase.write_run(
                proc,
                regions.global_hist.at(proc_i * 2 * hrow),
                2 * hrow / 64,
                64,
            );
        }
        phase.interleave_into(&mut trace);

        for pass in 0..PASSES {
            let (src, dst) = if pass % 2 == 0 {
                (&regions.key0, &regions.key1)
            } else {
                (&regions.key1, &regions.key0)
            };

            // Phase 1: local histograms — sequential reads of own keys.
            for proc_i in 0..p {
                let proc = ProcId(proc_i as u16);
                for i in (0..keys_per_proc).step_by(decimate as usize) {
                    let idx = proc_i * keys_per_proc + i;
                    phase.read(proc, src.elem(idx, KEY_BYTES));
                    let d = Self::digit(values[idx as usize], pass);
                    phase.write(
                        proc,
                        regions
                            .local_hist
                            .elem(proc_i * BUCKETS + d, HIST_ENTRY_BYTES),
                    );
                }
            }
            phase.interleave_into(&mut trace);

            // Phase 2: global prefix — every processor reads the others'
            // histogram rows and publishes its bucket offsets.
            for proc_i in 0..p {
                let proc = ProcId(proc_i as u16);
                for other in 0..p {
                    if other == proc_i {
                        continue;
                    }
                    // Read a 1/p slice of each foreign histogram row.
                    let start = other * BUCKETS + proc_i * (BUCKETS / p);
                    phase.read_run(
                        proc,
                        regions.local_hist.elem(start, HIST_ENTRY_BYTES),
                        BUCKETS / p,
                        HIST_ENTRY_BYTES,
                    );
                }
                phase.write_run(
                    proc,
                    regions
                        .global_hist
                        .elem(proc_i * 2 * BUCKETS, HIST_ENTRY_BYTES),
                    BUCKETS,
                    HIST_ENTRY_BYTES,
                );
            }
            phase.interleave_into(&mut trace);

            // Phase 3: permutation — sequential reads, scattered writes.
            // Key `idx` with digit `d` lands in bucket `d`; within the
            // bucket, each processor owns a sub-range (rank order).
            let bucket_span = self.keys / BUCKETS;
            let proc_span = (bucket_span / p).max(1);
            let mut cursors = vec![0u64; (BUCKETS * p) as usize];
            for proc_i in 0..p {
                let proc = ProcId(proc_i as u16);
                for i in (0..keys_per_proc).step_by(decimate as usize) {
                    let idx = proc_i * keys_per_proc + i;
                    phase.read(proc, src.elem(idx, KEY_BYTES));
                    let d = Self::digit(values[idx as usize], pass);
                    let cur = &mut cursors[(d * p + proc_i) as usize];
                    let pos = d * bucket_span + proc_i * proc_span + (*cur % proc_span);
                    *cur += 1;
                    phase.write(proc, dst.elem(pos.min(self.keys - 1), KEY_BYTES));
                }
            }
            phase.interleave_into(&mut trace);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::test_support;
    use crate::TraceStats;
    use dsm_types::Geometry;

    #[test]
    fn kernel_sanity() {
        test_support::check_kernel(&Radix::with_keys(1 << 14));
    }

    #[test]
    fn scaling_behaviour() {
        test_support::check_scaling(&Radix::with_keys(1 << 14));
    }

    #[test]
    fn paper_footprint_near_table3() {
        let mb = Radix::default().shared_bytes() as f64 / (1024.0 * 1024.0);
        // Table 3 reports 9.87 MB; two 4-MB key arrays plus rank trees.
        assert!((8.5..=10.2).contains(&mb), "footprint {mb:.2} MB");
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn rejects_unaligned_key_count() {
        let _ = Radix::with_keys(1000);
    }

    #[test]
    fn digit_extraction() {
        assert_eq!(Radix::digit(0b11_0000000001, 0), 1);
        assert_eq!(Radix::digit(0b11_0000000001, 1), 0b11);
    }

    #[test]
    fn writes_dominate_more_than_other_kernels() {
        let topo = Topology::paper_default();
        let geo = Geometry::paper_default();
        let trace = Radix::with_keys(1 << 14).generate(&topo, Scale::full());
        let stats = TraceStats::compute(&trace, &geo, &topo);
        assert!(
            stats.write_fraction() > 0.35,
            "write fraction {}",
            stats.write_fraction()
        );
    }

    #[test]
    fn permutation_writes_are_scattered() {
        // Consecutive writes by one processor into the destination array
        // should rarely fall in the same cache block.
        let topo = Topology::paper_default();
        let w = Radix::with_keys(1 << 14);
        let (_, regions) = w.layout(&topo);
        let trace = w.generate(&topo, Scale::full());
        let mut last_block: Option<u64> = None;
        let mut same = 0u64;
        let mut total = 0u64;
        for r in trace
            .iter()
            .filter(|r| r.op.is_write() && r.proc == ProcId(0) && regions.key1.contains(r.addr))
        {
            let blk = r.addr.0 / 64;
            if last_block == Some(blk) {
                same += 1;
            }
            total += 1;
            last_block = Some(blk);
        }
        assert!(total > 100, "not enough permutation writes ({total})");
        assert!(
            (same as f64) / (total as f64) < 0.3,
            "{same}/{total} consecutive writes in the same block — too regular"
        );
    }
}
