//! Raytrace trace kernel (SPLASH-2 `Raytrace`, "car" scene).
//!
//! The scene — BVH nodes plus primitives, ~35 MB for the car model — is
//! read-only shared data. Every ray performs a data-dependent walk:
//! a few hot nodes near the root, then pseudo-random descents through the
//! 14-MB node array and scattered primitive fetches. The result is the
//! paper's extreme case of a **huge, sparse, read-dominated remote working
//! set with very low spatial locality**, where page caches fragment badly
//! and a 512-KB DRAM NC still wins (Figures 9 and 10).

use dsm_types::{MemRef, ProcId, Topology};

use crate::rng::TraceRng;
use crate::{Layout, PhaseBuilder, Scale, Workload};

const NODE_BYTES: u64 = 128;
const PRIM_BYTES: u64 = 96;
const FRAMEBUFFER_BYTES: u64 = 1024 * 1024;
const RAY_BATCHES: u64 = 2;
const RAYS_PER_PROC: u64 = 1024;
const WALK_DEPTH: u64 = 18;

/// The Raytrace trace kernel.
#[derive(Debug, Clone)]
pub struct Raytrace {
    scene_mb: u64,
}

impl Raytrace {
    /// A scene of roughly `scene_mb` megabytes (40 % BVH nodes, 60 %
    /// primitives) plus a 1-MB framebuffer.
    ///
    /// # Panics
    ///
    /// Panics if `scene_mb` is zero.
    #[must_use]
    pub fn with_scene_mb(scene_mb: u64) -> Self {
        assert!(scene_mb > 0, "scene must be at least 1 MB");
        Raytrace { scene_mb }
    }

    fn node_count(&self) -> u64 {
        self.scene_mb * 1024 * 1024 * 2 / 5 / NODE_BYTES
    }

    fn prim_count(&self) -> u64 {
        self.scene_mb * 1024 * 1024 * 3 / 5 / PRIM_BYTES
    }
}

impl Default for Raytrace {
    /// The paper's instance: the 34.86-MB "car" scene.
    fn default() -> Self {
        Raytrace::with_scene_mb(34)
    }
}

impl Workload for Raytrace {
    fn name(&self) -> &'static str {
        "raytrace"
    }

    fn params(&self) -> String {
        format!("car-sized scene, {} MB", self.scene_mb)
    }

    fn shared_bytes(&self) -> u64 {
        let mut l = Layout::new(4096);
        let _ = l.region("nodes", self.node_count() * NODE_BYTES);
        let _ = l.region("prims", self.prim_count() * PRIM_BYTES);
        let _ = l.region("framebuffer", FRAMEBUFFER_BYTES);
        l.total_bytes()
    }

    fn generate(&self, topo: &Topology, scale: Scale) -> Vec<MemRef> {
        let mut l = Layout::new(4096);
        let nodes = l
            .region("nodes", self.node_count() * NODE_BYTES)
            .expect("nonzero");
        let prims = l
            .region("prims", self.prim_count() * PRIM_BYTES)
            .expect("nonzero");
        let fb = l.region("framebuffer", FRAMEBUFFER_BYTES).expect("nonzero");
        let p = u64::from(topo.total_procs());
        let batches = scale.apply(RAY_BATCHES);
        let mut rng = TraceRng::for_workload("raytrace", 0x4a7e);

        let mut trace = Vec::new();
        let mut phase = PhaseBuilder::new(topo);

        // Init: the scene is built in parallel (the tuned SPLASH-2 codes
        // distribute the model), so first-touch spreads pages round-robin
        // by processor chunk; the framebuffer is tiled over processors.
        for proc_i in 0..p {
            let proc = ProcId(proc_i as u16);
            let nchunk = (self.node_count() * NODE_BYTES) / p;
            phase.write_run(proc, nodes.at(proc_i * nchunk), nchunk / 64, 64);
            let pchunk = (self.prim_count() * PRIM_BYTES) / p;
            phase.write_run(proc, prims.at(proc_i * pchunk), pchunk / 64, 64);
            let fchunk = FRAMEBUFFER_BYTES / p;
            phase.write_run(proc, fb.at(proc_i * fchunk), fchunk / 64, 64);
        }
        phase.interleave_into(&mut trace);

        for _batch in 0..batches {
            for proc_i in 0..p {
                let proc = ProcId(proc_i as u16);
                for ray in 0..RAYS_PER_PROC {
                    for step in 0..WALK_DEPTH {
                        // Hot root neighbourhood early in the walk, then
                        // data-dependent jumps over the whole node array.
                        let node = if step < 3 {
                            rng.near(64.min(self.node_count()))
                        } else {
                            rng.below(self.node_count())
                        };
                        phase.read(proc, nodes.at(node * NODE_BYTES));
                        phase.read(proc, nodes.at(node * NODE_BYTES + 64));
                        // Leaf intersection every third step.
                        if step % 3 == 2 {
                            let prim = rng.below(self.prim_count());
                            phase.read(proc, prims.at(prim * PRIM_BYTES));
                            phase.read(proc, prims.at(prim * PRIM_BYTES + 64));
                        }
                    }
                    // Shade: one framebuffer write in the processor's tile.
                    let fchunk = FRAMEBUFFER_BYTES / p;
                    phase.write(proc, fb.at(proc_i * fchunk + (ray * 4) % fchunk));
                }
            }
            phase.interleave_into(&mut trace);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::test_support;
    use crate::TraceStats;
    use dsm_types::Geometry;

    #[test]
    fn kernel_sanity() {
        test_support::check_kernel(&Raytrace::with_scene_mb(2));
    }

    #[test]
    fn scaling_behaviour() {
        test_support::check_scaling(&Raytrace::with_scene_mb(2));
    }

    #[test]
    fn paper_footprint_near_table3() {
        let mb = Raytrace::default().shared_bytes() as f64 / (1024.0 * 1024.0);
        assert!((34.0..=36.0).contains(&mb), "footprint {mb:.2} MB vs 34.86");
    }

    #[test]
    fn read_dominated_and_sparse() {
        let topo = Topology::paper_default();
        let geo = Geometry::paper_default();
        let trace = Raytrace::with_scene_mb(8).generate(&topo, Scale::full());
        let stats = TraceStats::compute(&trace, &geo, &topo);
        assert!(
            stats.write_fraction() < 0.25,
            "write fraction {}",
            stats.write_fraction()
        );
        // Compute-phase reads revisit scene blocks only a few times.
        assert!(
            stats.refs_per_block() < 30.0,
            "refs/block {}",
            stats.refs_per_block()
        );
    }

    #[test]
    fn framebuffer_writes_stay_in_own_tile() {
        let topo = Topology::paper_default();
        let w = Raytrace::with_scene_mb(2);
        let trace = w.generate(&topo, Scale::full());
        let fb_base = w.shared_bytes() - FRAMEBUFFER_BYTES.div_ceil(4096) * 4096;
        let fchunk = FRAMEBUFFER_BYTES / 32;
        for r in trace
            .iter()
            .filter(|r| r.op.is_write() && r.addr.0 >= fb_base)
        {
            let tile = ((r.addr.0 - fb_base) / fchunk).min(31) as u16;
            assert_eq!(tile, r.proc.0, "foreign framebuffer write {r}");
        }
    }
}
