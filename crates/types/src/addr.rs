//! Byte, block and page addresses.
//!
//! The simulator models a single shared (physical) address space. Three
//! newtypes keep the different granularities from being confused:
//! [`Addr`] is a byte address, [`BlockAddr`] a cache-block number, and
//! [`PageAddr`] a page number. Conversions between them go through
//! [`crate::Geometry`], which owns the block/page sizes.

use core::fmt;

/// A byte address in the shared data space.
///
/// # Example
///
/// ```
/// use dsm_types::Addr;
/// let a = Addr(0x40);
/// assert_eq!(a.offset(8).0, 0x48);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Returns this address displaced by `bytes`.
    #[must_use]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

/// A cache-block number (byte address divided by the block size).
///
/// Coherence state — in processor caches, network caches, page caches and
/// the directory — is kept at this granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{:#x}", self.0)
    }
}

impl From<u64> for BlockAddr {
    fn from(v: u64) -> Self {
        BlockAddr(v)
    }
}

impl From<BlockAddr> for u64 {
    fn from(a: BlockAddr) -> Self {
        a.0
    }
}

/// A page number (byte address divided by the page size).
///
/// Page caches allocate at this granularity, and first-touch placement
/// assigns home clusters page by page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageAddr(pub u64);

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg:{:#x}", self.0)
    }
}

impl From<u64> for PageAddr {
    fn from(v: u64) -> Self {
        PageAddr(v)
    }
}

impl From<PageAddr> for u64 {
    fn from(a: PageAddr) -> Self {
        a.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_offset_adds_bytes() {
        assert_eq!(Addr(100).offset(28), Addr(128));
    }

    #[test]
    fn addr_display_is_hex() {
        assert_eq!(Addr(255).to_string(), "0xff");
        assert_eq!(format!("{:x}", Addr(255)), "ff");
    }

    #[test]
    fn block_and_page_display_are_tagged() {
        assert_eq!(BlockAddr(16).to_string(), "blk:0x10");
        assert_eq!(PageAddr(16).to_string(), "pg:0x10");
    }

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(u64::from(Addr::from(7u64)), 7);
        assert_eq!(u64::from(BlockAddr::from(7u64)), 7);
        assert_eq!(u64::from(PageAddr::from(7u64)), 7);
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(Addr(1) < Addr(2));
        assert!(BlockAddr(1) < BlockAddr(2));
        assert!(PageAddr(1) < PageAddr(2));
    }
}
