//! A set of clusters as a single presence word.

use std::fmt;

use crate::ClusterId;

/// A set of [`ClusterId`]s packed into one `u64` presence mask (the
/// machine has at most 64 clusters — the directory's presence-word
/// width).
///
/// This is the allocation-free form of the `Vec<ClusterId>` lists the
/// coherence path used to build per write miss: the directory already
/// holds presence as a bitmask, so invalidation targets travel as the
/// mask itself and are expanded lazily by [`ClusterSet::iter`], in
/// ascending cluster order.
///
/// # Example
///
/// ```
/// use dsm_types::{ClusterId, ClusterSet};
///
/// let mut s = ClusterSet::new();
/// s.insert(ClusterId(3));
/// s.insert(ClusterId(0));
/// assert_eq!(s.len(), 2);
/// let ids: Vec<ClusterId> = s.iter().collect();
/// assert_eq!(ids, vec![ClusterId(0), ClusterId(3)]); // ascending
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ClusterSet(u64);

impl ClusterSet {
    /// The empty set.
    #[must_use]
    pub fn new() -> Self {
        ClusterSet(0)
    }

    /// A set from a raw presence mask (bit `i` = cluster `i`).
    #[must_use]
    pub fn from_mask(mask: u64) -> Self {
        ClusterSet(mask)
    }

    /// The set of all clusters `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64` (wider than the presence word).
    #[must_use]
    pub fn all(n: u16) -> Self {
        assert!(n <= 64, "cluster count {n} exceeds the presence word");
        if n == 64 {
            ClusterSet(u64::MAX)
        } else {
            ClusterSet((1u64 << n) - 1)
        }
    }

    /// The raw presence mask.
    #[must_use]
    pub fn mask(self) -> u64 {
        self.0
    }

    /// Number of clusters in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether `cluster` is in the set.
    #[must_use]
    pub fn contains(self, cluster: ClusterId) -> bool {
        debug_assert!(cluster.0 < 64);
        self.0 & (1u64 << cluster.0) != 0
    }

    /// Adds `cluster`; returns whether it was newly inserted.
    pub fn insert(&mut self, cluster: ClusterId) -> bool {
        debug_assert!(cluster.0 < 64);
        let bit = 1u64 << cluster.0;
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }

    /// Removes `cluster`; returns whether it was present.
    pub fn remove(&mut self, cluster: ClusterId) -> bool {
        debug_assert!(cluster.0 < 64);
        let bit = 1u64 << cluster.0;
        let had = self.0 & bit != 0;
        self.0 &= !bit;
        had
    }

    /// This set with `cluster` removed.
    #[must_use]
    pub fn without(self, cluster: ClusterId) -> Self {
        debug_assert!(cluster.0 < 64);
        ClusterSet(self.0 & !(1u64 << cluster.0))
    }

    /// Whether the set contains any cluster other than `cluster` — the
    /// "is anyone else sharing this?" question the migration/replication
    /// policy asks per write, answered without materializing a list.
    #[must_use]
    pub fn contains_other_than(self, cluster: ClusterId) -> bool {
        !self.without(cluster).is_empty()
    }

    /// Iterates the members in ascending cluster order.
    #[must_use]
    pub fn iter(self) -> ClusterSetIter {
        ClusterSetIter(self.0)
    }
}

impl IntoIterator for ClusterSet {
    type Item = ClusterId;
    type IntoIter = ClusterSetIter;

    fn into_iter(self) -> ClusterSetIter {
        self.iter()
    }
}

impl FromIterator<ClusterId> for ClusterSet {
    fn from_iter<I: IntoIterator<Item = ClusterId>>(iter: I) -> Self {
        let mut s = ClusterSet::new();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl fmt::Display for ClusterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

/// Ascending iterator over a [`ClusterSet`] (one `trailing_zeros` per
/// member, no allocation).
#[derive(Debug, Clone)]
pub struct ClusterSetIter(u64);

impl Iterator for ClusterSetIter {
    type Item = ClusterId;

    fn next(&mut self) -> Option<ClusterId> {
        if self.0 == 0 {
            return None;
        }
        #[allow(clippy::cast_possible_truncation)]
        let c = self.0.trailing_zeros() as u16;
        self.0 &= self.0 - 1; // clear lowest set bit
        Some(ClusterId(c))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for ClusterSetIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = ClusterSet::new();
        assert!(s.is_empty());
        assert!(s.insert(ClusterId(5)));
        assert!(!s.insert(ClusterId(5)));
        assert!(s.contains(ClusterId(5)));
        assert!(!s.contains(ClusterId(4)));
        assert!(s.remove(ClusterId(5)));
        assert!(!s.remove(ClusterId(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn iterates_ascending() {
        let s = ClusterSet::from_mask(0b1010_0101);
        let v: Vec<ClusterId> = s.iter().collect();
        assert_eq!(
            v,
            vec![ClusterId(0), ClusterId(2), ClusterId(5), ClusterId(7)]
        );
        assert_eq!(s.iter().len(), 4);
    }

    #[test]
    fn all_and_edge_widths() {
        assert_eq!(ClusterSet::all(0).len(), 0);
        assert_eq!(ClusterSet::all(8).mask(), 0xff);
        assert_eq!(ClusterSet::all(64).len(), 64);
        assert!(ClusterSet::all(64).contains(ClusterId(63)));
    }

    #[test]
    #[should_panic(expected = "exceeds the presence word")]
    fn all_rejects_over_64() {
        let _ = ClusterSet::all(65);
    }

    #[test]
    fn without_and_other_than() {
        let s = ClusterSet::from_mask(0b110);
        assert!(s.contains_other_than(ClusterId(1)));
        assert!(s.contains_other_than(ClusterId(0)));
        let only = ClusterSet::from_mask(0b010);
        assert!(!only.contains_other_than(ClusterId(1)));
        assert_eq!(s.without(ClusterId(1)).mask(), 0b100);
    }

    #[test]
    fn from_iterator_and_display() {
        let s: ClusterSet = [ClusterId(3), ClusterId(1)].into_iter().collect();
        assert_eq!(s.to_string(), "{C1, C3}");
        assert_eq!(ClusterSet::new().to_string(), "{}");
    }
}
