//! The pre-split form of a [`MemRef`](crate::MemRef): every per-reference
//! derivation done once, ahead of replay.

use crate::{BlockAddr, ClusterId, LocalProcId, PageAddr};

/// One shared-memory reference with its address decomposition and issuer
/// split already applied — the unit a columnar replay buffer hands the
/// simulator, so the per-reference hot path does zero address arithmetic
/// and no page-table lookups.
///
/// A `DecodedRef` carries exactly what `System::process` derives from a
/// `MemRef` before dispatching:
///
/// * [`Topology::split_of`](crate::Topology::split_of) →
///   [`DecodedRef::cluster`] / [`DecodedRef::lproc`];
/// * [`Geometry::decompose`](crate::Geometry::decompose) →
///   [`DecodedRef::block`] / [`DecodedRef::page`];
/// * first-touch page placement → [`DecodedRef::home`] /
///   [`DecodedRef::first_touch`] (the home the page has under pure
///   first-touch placement, i.e. the issuing cluster of the trace's first
///   reference to it — see `SharedTrace` in `dsm-trace`).
///
/// The precomputed home is only valid while page homes are static; a
/// simulator running OS migration policies must fall back to its live
/// placement map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecodedRef {
    /// The issuing processor's cluster.
    pub cluster: ClusterId,
    /// The issuing processor's index within its cluster.
    pub lproc: LocalProcId,
    /// Whether the reference is a store.
    pub write: bool,
    /// Whether this is the trace's first reference to [`DecodedRef::page`]
    /// (the reference that first-touch placement assigns the page on).
    pub first_touch: bool,
    /// The block containing the address.
    pub block: BlockAddr,
    /// The page containing the address.
    pub page: PageAddr,
    /// The page's home cluster under first-touch placement.
    pub home: ClusterId,
}

impl DecodedRef {
    /// Whether the reference is remote to its issuer under first-touch
    /// placement.
    #[must_use]
    #[inline]
    pub fn remote(&self) -> bool {
        self.home != self.cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_compares_home_to_issuer() {
        let mut r = DecodedRef {
            cluster: ClusterId(2),
            home: ClusterId(2),
            ..DecodedRef::default()
        };
        assert!(!r.remote());
        r.home = ClusterId(3);
        assert!(r.remote());
    }
}
