//! The error types shared by all simulator crates.
//!
//! [`ConfigError`] covers invalid configuration; [`DsmError`] is the
//! structured runtime error every fallible surface (trace decode, CLI
//! parsing, results writing, invariant checking) funnels into, carrying a
//! failure class for process exit codes plus a context chain so a failure
//! deep in a sweep still names the point, workload and reference it hit.

use core::fmt;
use std::error::Error;

/// An invalid configuration was supplied (bad sizes, zero counts, mismatched
/// geometry, ...).
///
/// # Example
///
/// ```
/// use dsm_types::Geometry;
/// let err = Geometry::new(48, 4096).unwrap_err();
/// assert!(err.to_string().contains("power of two"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for ConfigError {}

/// The failure class of a [`DsmError`], mapped 1:1 onto process exit
/// codes so scripts and CI can distinguish "you called it wrong" from
/// "your input is bad" from "the simulator is broken".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// The command line was malformed (exit code 2).
    Usage,
    /// An input file or argument value was invalid — corrupt trace,
    /// out-of-range scale, unknown system name (exit code 3).
    BadInput,
    /// An internal failure: I/O on results, a panicked sweep point, a
    /// poisoned lock (exit code 4).
    Internal,
    /// The coherence invariant checker found corrupt protocol state
    /// (exit code 4 — the output cannot be trusted).
    InvariantViolation,
    /// A supervised operation exceeded its deadline — a stalled worker,
    /// a hung subprocess (exit code 4 — the run did not complete).
    Stalled,
}

impl ErrorKind {
    /// The process exit code for this failure class: 2 usage, 3 bad
    /// input, 4 internal or invariant violation (0 is reserved for
    /// success and never produced by an error).
    #[must_use]
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorKind::Usage => 2,
            ErrorKind::BadInput => 3,
            ErrorKind::Internal | ErrorKind::InvariantViolation | ErrorKind::Stalled => 4,
        }
    }

    /// A short stable label used in rendered messages and journals.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::Usage => "usage",
            ErrorKind::BadInput => "bad input",
            ErrorKind::Internal => "internal",
            ErrorKind::InvariantViolation => "invariant violation",
            ErrorKind::Stalled => "stalled",
        }
    }
}

/// A structured simulator error: a failure class, a root message, and a
/// chain of context frames added as the error propagates outward.
///
/// Context frames are pushed innermost-first with [`DsmError::context`]
/// and rendered outermost-first, so the final message reads top-down like
/// a stack trace:
///
/// ```text
/// bad input: while decoding trace.dsmt: record 17: op byte 3 is not a MemOp
/// ```
///
/// # Example
///
/// ```
/// use dsm_types::{DsmError, ErrorKind};
/// let e = DsmError::bad_input("op byte 3 is not a MemOp")
///     .context("record 17")
///     .context("while decoding trace.dsmt");
/// assert_eq!(e.kind(), ErrorKind::BadInput);
/// assert_eq!(e.exit_code(), 3);
/// assert_eq!(
///     e.to_string(),
///     "bad input: while decoding trace.dsmt: record 17: op byte 3 is not a MemOp"
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsmError {
    kind: ErrorKind,
    message: String,
    /// Context frames, innermost first (reverse of display order).
    context: Vec<String>,
}

impl DsmError {
    /// Creates an error of the given kind with a root message.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        DsmError {
            kind,
            message: message.into(),
            context: Vec::new(),
        }
    }

    /// A malformed command line (exit code 2).
    pub fn usage(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Usage, message)
    }

    /// An invalid input file or argument value (exit code 3).
    pub fn bad_input(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::BadInput, message)
    }

    /// An internal failure (exit code 4).
    pub fn internal(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Internal, message)
    }

    /// A coherence invariant violation (exit code 4).
    pub fn invariant(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::InvariantViolation, message)
    }

    /// A deadline expiry — a stalled worker or hung subprocess (exit
    /// code 4).
    pub fn stalled(message: impl Into<String>) -> Self {
        Self::new(ErrorKind::Stalled, message)
    }

    /// Pushes a context frame describing where the error passed through;
    /// frames added later render further to the left (outermost first).
    #[must_use]
    pub fn context(mut self, frame: impl Into<String>) -> Self {
        self.context.push(frame.into());
        self
    }

    /// The failure class.
    #[must_use]
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The root message without kind label or context frames.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The process exit code (see [`ErrorKind::exit_code`]).
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        self.kind.exit_code()
    }
}

impl fmt::Display for DsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.kind.label())?;
        f.write_str(": ")?;
        for frame in self.context.iter().rev() {
            f.write_str(frame)?;
            f.write_str(": ")?;
        }
        f.write_str(&self.message)
    }
}

impl Error for DsmError {}

impl From<ConfigError> for DsmError {
    /// Configuration errors are the caller's input being invalid.
    fn from(e: ConfigError) -> Self {
        DsmError::bad_input(e.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_message() {
        let e = ConfigError::new("bad things");
        assert_eq!(e.to_string(), "bad things");
    }

    #[test]
    fn implements_error_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<ConfigError>();
        assert_traits::<DsmError>();
    }

    #[test]
    fn exit_codes_distinguish_failure_classes() {
        assert_eq!(DsmError::usage("x").exit_code(), 2);
        assert_eq!(DsmError::bad_input("x").exit_code(), 3);
        assert_eq!(DsmError::internal("x").exit_code(), 4);
        assert_eq!(DsmError::invariant("x").exit_code(), 4);
        assert_eq!(DsmError::stalled("x").exit_code(), 4);
        assert_eq!(ErrorKind::Stalled.label(), "stalled");
    }

    #[test]
    fn context_renders_outermost_first() {
        let e = DsmError::bad_input("root")
            .context("inner")
            .context("outer");
        assert_eq!(e.to_string(), "bad input: outer: inner: root");
        assert_eq!(e.message(), "root");
    }

    #[test]
    fn config_error_converts_to_bad_input() {
        let e: DsmError = ConfigError::new("pc too small").into();
        assert_eq!(e.kind(), ErrorKind::BadInput);
        assert_eq!(e.to_string(), "bad input: pc too small");
    }
}
