//! The configuration error type shared by all simulator crates.

use core::fmt;
use std::error::Error;

/// An invalid configuration was supplied (bad sizes, zero counts, mismatched
/// geometry, ...).
///
/// # Example
///
/// ```
/// use dsm_types::Geometry;
/// let err = Geometry::new(48, 4096).unwrap_err();
/// assert!(err.to_string().contains("power of two"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_message() {
        let e = ConfigError::new("bad things");
        assert_eq!(e.to_string(), "bad things");
    }

    #[test]
    fn implements_error_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<ConfigError>();
    }
}
