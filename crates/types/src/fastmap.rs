//! Dependency-free fast hashing for the simulator's hot path.
//!
//! Every trace reference walks a chain of map lookups (home placement,
//! directory entry, network-cache entry, page-cache frame). The std
//! `HashMap` default hasher (SipHash-1-3) is DoS-resistant but costs tens
//! of cycles per lookup — wasted work for a simulator hashing its own
//! block numbers. This module provides the two replacements:
//!
//! * [`FxHasher`] / [`FxBuildHasher`] — the FxHash multiply-rotate mix
//!   (from the Firefox/rustc hasher) for `HashMap`s with non-`u64` keys
//!   (see [`FxHashMap`]);
//! * [`DenseMap`] — a small open-addressing table keyed directly by
//!   `u64` block/page numbers, the common case on the per-reference
//!   path: one multiply, one probe, no per-entry allocation.
//!
//! Neither is DoS-resistant; keys here are simulator-internal addresses,
//! never attacker-controlled input.

use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash multiplier (a 64-bit number close to the golden ratio,
/// as used by rustc's `FxHasher`).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic [`Hasher`] (FxHash): one rotate, one XOR and
/// one multiply per word of input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// [`std::hash::BuildHasher`] for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `std::collections::HashMap` hashed with [`FxHasher`] — for hot maps
/// whose keys are not plain `u64` (e.g. `(page, cluster)` tuples).
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Mixes a `u64` key to a table index using the high bits of a single
/// multiply (the low bits of `key * K` are poorly distributed).
#[inline]
fn mix(key: u64) -> u64 {
    key.wrapping_mul(K)
}

/// An open-addressing hash table keyed by `u64`, tuned for the
/// simulator's per-reference path: block and page numbers in, small
/// `Copy`-ish values out.
///
/// Compared to `HashMap<u64, V>` with the default hasher:
///
/// * hashing is one multiply instead of a SipHash round;
/// * probing is linear over a flat slot array (cache-friendly);
/// * removal back-shifts displaced entries, so no tombstones accumulate.
///
/// Iteration order is unspecified (as with `HashMap`) — callers that
/// need determinism must sort or use unique extrema, exactly as before.
///
/// # Example
///
/// ```
/// use dsm_types::DenseMap;
///
/// let mut m: DenseMap<u32> = DenseMap::new();
/// m.insert(42, 7);
/// *m.entry_or_default(42) += 1;
/// assert_eq!(m.get(42), Some(&8));
/// assert_eq!(m.remove(42), Some(8));
/// assert!(m.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct DenseMap<V> {
    /// Power-of-two slot array; `None` is an empty slot.
    slots: Vec<Option<(u64, V)>>,
    len: usize,
}

impl<V> Default for DenseMap<V> {
    fn default() -> Self {
        DenseMap::new()
    }
}

enum Probe {
    Found(usize),
    Vacant(usize),
}

impl<V> DenseMap<V> {
    /// Creates an empty map (no allocation until the first insert).
    #[must_use]
    pub fn new() -> Self {
        DenseMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Creates a map that can hold `n` entries without rehashing.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        let mut m = DenseMap::new();
        if n > 0 {
            m.allocate((n * 4 / 3 + 1).next_power_of_two().max(8));
        }
        m
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.len = 0;
    }

    #[inline]
    fn home_slot(&self, key: u64) -> usize {
        // slots.len() is a power of two; take the high bits of the mix.
        let shift = 64 - self.slots.len().trailing_zeros();
        #[allow(clippy::cast_possible_truncation)]
        let i = (mix(key) >> shift) as usize;
        i
    }

    fn probe(&self, key: u64) -> Probe {
        debug_assert!(!self.slots.is_empty());
        let mask = self.slots.len() - 1;
        let mut i = self.home_slot(key);
        loop {
            match &self.slots[i] {
                None => return Probe::Vacant(i),
                Some((k, _)) if *k == key => return Probe::Found(i),
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    fn allocate(&mut self, capacity: usize) {
        debug_assert!(capacity.is_power_of_two());
        let old = std::mem::take(&mut self.slots);
        self.slots.resize_with(capacity, || None);
        for (k, v) in old.into_iter().flatten() {
            match self.probe(k) {
                Probe::Vacant(i) => self.slots[i] = Some((k, v)),
                Probe::Found(_) => unreachable!("duplicate key during rehash"),
            }
        }
    }

    /// Grows if adding one entry would exceed the 3/4 load factor.
    fn reserve_one(&mut self) {
        if self.slots.is_empty() {
            self.allocate(8);
        } else if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.allocate(self.slots.len() * 2);
        }
    }

    /// Hints `key`'s home slot into L1 without probing — the replay
    /// pipeline calls this for the *next* batch's keys while the current
    /// batch is processed, overlapping the lookup miss with useful work.
    /// Collision chains beyond the home slot's cache line may still
    /// miss; every probe starts at the home slot, so it is the line that
    /// matters.
    #[inline]
    pub fn prefetch(&self, key: u64) {
        if !self.slots.is_empty() {
            crate::prefetch::prefetch_slice(&self.slots, self.home_slot(key));
        }
    }

    /// The value for `key`, if present.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<&V> {
        if self.slots.is_empty() {
            return None;
        }
        match self.probe(key) {
            Probe::Found(i) => self.slots[i].as_ref().map(|(_, v)| v),
            Probe::Vacant(_) => None,
        }
    }

    /// Mutable access to the value for `key`, if present.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        if self.slots.is_empty() {
            return None;
        }
        match self.probe(key) {
            Probe::Found(i) => self.slots[i].as_mut().map(|(_, v)| v),
            Probe::Vacant(_) => None,
        }
    }

    /// Whether `key` has an entry.
    #[must_use]
    pub fn contains_key(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `value` for `key`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        self.reserve_one();
        match self.probe(key) {
            Probe::Found(i) => {
                let slot = self.slots[i].as_mut().expect("found slot is occupied");
                Some(std::mem::replace(&mut slot.1, value))
            }
            Probe::Vacant(i) => {
                self.slots[i] = Some((key, value));
                self.len += 1;
                None
            }
        }
    }

    /// The value for `key`, inserting `make()` first if absent.
    pub fn entry_or_insert_with(&mut self, key: u64, make: impl FnOnce() -> V) -> &mut V {
        self.reserve_one();
        let i = match self.probe(key) {
            Probe::Found(i) => i,
            Probe::Vacant(i) => {
                self.slots[i] = Some((key, make()));
                self.len += 1;
                i
            }
        };
        &mut self.slots[i].as_mut().expect("slot just filled").1
    }

    /// Removes `key`, returning its value. Back-shifts displaced entries
    /// so later probes stay short (no tombstones).
    pub fn remove(&mut self, key: u64) -> Option<V> {
        if self.slots.is_empty() {
            return None;
        }
        let i = match self.probe(key) {
            Probe::Found(i) => i,
            Probe::Vacant(_) => return None,
        };
        let (_, value) = self.slots[i].take().expect("found slot is occupied");
        self.len -= 1;
        // Back-shift: any entry probing through the hole moves into it.
        let mask = self.slots.len() - 1;
        let mut hole = i;
        let mut j = (i + 1) & mask;
        while let Some((k, _)) = &self.slots[j] {
            let home = self.home_slot(*k);
            // `j`'s entry belongs in the hole iff its home position does
            // not lie strictly between the hole and `j` (cyclically).
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.slots[hole] = self.slots[j].take();
                hole = j;
            }
            j = (j + 1) & mask;
        }
        Some(value)
    }

    /// Iterates over `(key, &value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
    }

    /// Iterates over keys in unspecified order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates over values in unspecified order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    /// Iterates over mutable values in unspecified order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.slots
            .iter_mut()
            .filter_map(|s| s.as_mut().map(|(_, v)| v))
    }
}

impl<V: Default> DenseMap<V> {
    /// The value for `key`, inserting `V::default()` first if absent.
    pub fn entry_or_default(&mut self, key: u64) -> &mut V {
        self.entry_or_insert_with(key, V::default)
    }
}

impl<V> FromIterator<(u64, V)> for DenseMap<V> {
    fn from_iter<I: IntoIterator<Item = (u64, V)>>(iter: I) -> Self {
        let mut m = DenseMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: DenseMap<String> = DenseMap::new();
        assert!(m.is_empty());
        assert_eq!(m.get(1), None);
        assert_eq!(m.insert(1, "a".into()), None);
        assert_eq!(m.insert(1, "b".into()), Some("a".into()));
        assert_eq!(m.get(1).map(String::as_str), Some("b"));
        assert_eq!(m.remove(1), Some("b".into()));
        assert_eq!(m.remove(1), None);
        assert!(m.is_empty());
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m: DenseMap<u64> = DenseMap::new();
        for i in 0..10_000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000 {
            assert_eq!(m.get(i), Some(&(i * 2)));
        }
    }

    #[test]
    fn entry_or_default_counts() {
        let mut m: DenseMap<u64> = DenseMap::new();
        for _ in 0..3 {
            *m.entry_or_default(9) += 1;
        }
        assert_eq!(m.get(9), Some(&3));
    }

    #[test]
    fn backshift_removal_keeps_colliders_reachable() {
        // Sequential keys stress the probe chains; remove every other
        // entry and verify the rest stay findable.
        let mut m: DenseMap<u64> = DenseMap::new();
        for i in 0..1000 {
            m.insert(i, i);
        }
        for i in (0..1000).step_by(2) {
            assert_eq!(m.remove(i), Some(i));
        }
        for i in 0..1000 {
            if i % 2 == 0 {
                assert_eq!(m.get(i), None);
            } else {
                assert_eq!(m.get(i), Some(&i));
            }
        }
        assert_eq!(m.len(), 500);
    }

    #[test]
    fn with_capacity_avoids_rehash() {
        let mut m: DenseMap<u8> = DenseMap::with_capacity(100);
        let cap = m.slots.len();
        for i in 0..100 {
            m.insert(i, 0);
        }
        assert_eq!(m.slots.len(), cap, "no growth within stated capacity");
    }

    #[test]
    fn iteration_visits_every_entry_once() {
        let mut m: DenseMap<u64> = DenseMap::new();
        for i in 0..64 {
            m.insert(i << 32, i);
        }
        let mut seen: Vec<u64> = m.iter().map(|(k, _)| k).collect();
        seen.sort_unstable();
        let expect: Vec<u64> = (0..64).map(|i| i << 32).collect();
        assert_eq!(seen, expect);
        assert_eq!(m.values().count(), 64);
        assert_eq!(m.keys().count(), 64);
    }

    #[test]
    fn clear_keeps_allocation() {
        let mut m: DenseMap<u64> = DenseMap::new();
        for i in 0..100 {
            m.insert(i, i);
        }
        let cap = m.slots.len();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(5), None);
        assert_eq!(m.slots.len(), cap);
        m.insert(5, 5);
        assert_eq!(m.get(5), Some(&5));
    }

    #[test]
    fn fx_hasher_is_deterministic_and_word_consistent() {
        let b = FxBuildHasher::default();
        assert_eq!(b.hash_one(42u64), b.hash_one(42u64));
        assert_ne!(b.hash_one(42u64), b.hash_one(43u64));
        // Byte-stream writes chunk to the same words as write_u64.
        let mut h1 = FxHasher::default();
        h1.write(&7u64.to_le_bytes());
        let mut h2 = FxHasher::default();
        h2.write_u64(7);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn fx_hash_map_works_with_tuple_keys() {
        let mut m: FxHashMap<(u64, u16), u32> = FxHashMap::default();
        m.insert((1, 2), 3);
        assert_eq!(m.get(&(1, 2)), Some(&3));
        assert_eq!(m.get(&(2, 1)), None);
    }
}
