//! Seed-deterministic fault injection: the plan vocabulary and the
//! process-wide arming switch.
//!
//! The replay stack is supervised (sharded workers degrade to the
//! single-threaded oracle, journal and atomic writes retry transient
//! errors, mapped traces are revalidated), and this module is how that
//! machinery is *tested*: a [`FaultPlan`] names one injection site and
//! its firing coordinates, and every supervised layer consults the plan
//! at its injection points. With no plan installed the consultation is
//! a single relaxed atomic load ([`active`] returns `None` without
//! locking), so the hot path costs nothing — the same zero-cost-when-
//! absent discipline as the probe layer.
//!
//! Plans come from two places:
//!
//! * a **seed** (`--fault-seed N` or a bare integer in
//!   `DSM_FAULT_PLAN`), expanded deterministically by
//!   [`FaultPlan::derive`] so a CI sweep over seeds covers the
//!   site × coordinate space reproducibly;
//! * an **explicit spec** (`DSM_FAULT_PLAN=worker-panic@r1.p0.s0`
//!   etc.), parsed by [`FaultPlan::from_spec`], for targeting one site
//!   exactly.
//!
//! This lives in `dsm-types` (not `dsm-core`) because the lowest
//! injection site — mapped-trace truncation — is in `dsm-trace`, which
//! only depends on this crate. `dsm_core::fault` re-exports everything
//! and adds the recovery helpers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Where an injected fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A sharded-replay worker panics at the chosen
    /// `(round, part, seq)` chunk boundary.
    WorkerPanic,
    /// A worker's chunk send fails as if the committer vanished; the
    /// worker abandons its range.
    MailboxSendFail,
    /// A worker stops committing chunks (an artificial backpressure
    /// stall) until the committer's watchdog tears the mailboxes down
    /// or [`FaultPlan::stall_ms`] elapses.
    MailboxStall,
    /// Transient `EINTR`-style failures injected into sweep-journal
    /// appends ([`FaultPlan::io_failures`] consecutive attempts fail).
    JournalIo,
    /// Transient failures injected into atomic JSON writes.
    AtomicWriteIo,
    /// Mapped-trace revalidation reports the file truncated.
    MmapTruncate,
}

impl FaultSite {
    /// The stable spec label — the prefix accepted by
    /// [`FaultPlan::from_spec`] and printed in diagnostics.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::WorkerPanic => "worker-panic",
            FaultSite::MailboxSendFail => "mailbox-send-fail",
            FaultSite::MailboxStall => "mailbox-stall",
            FaultSite::JournalIo => "journal-io",
            FaultSite::AtomicWriteIo => "atomic-write-io",
            FaultSite::MmapTruncate => "mmap-truncate",
        }
    }

    /// Whether this site fires inside the sharded replay runtime (and
    /// thus carries `(round, part, seq)` coordinates).
    #[must_use]
    pub fn is_shard(self) -> bool {
        matches!(
            self,
            FaultSite::WorkerPanic | FaultSite::MailboxSendFail | FaultSite::MailboxStall
        )
    }

    /// Whether this site injects transient I/O errors (and thus carries
    /// an [`FaultPlan::io_failures`] budget).
    #[must_use]
    pub fn is_io(self) -> bool {
        matches!(self, FaultSite::JournalIo | FaultSite::AtomicWriteIo)
    }
}

/// All sites, in the order [`FaultPlan::derive`] indexes them.
pub const FAULT_SITES: [FaultSite; 6] = [
    FaultSite::WorkerPanic,
    FaultSite::MailboxSendFail,
    FaultSite::MailboxStall,
    FaultSite::JournalIo,
    FaultSite::AtomicWriteIo,
    FaultSite::MmapTruncate,
];

/// One deterministic fault to inject: a site plus its firing
/// coordinates. Built from a seed ([`FaultPlan::derive`]) or a spec
/// string ([`FaultPlan::from_spec`]), installed process-wide with
/// [`install`], and consulted by the supervised layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The injection site.
    pub site: FaultSite,
    /// Shard sites: the parallel round to fire in (the component engine
    /// numbers rounds by shard index from 0; the rounds engine numbers
    /// them from 1).
    pub round: u32,
    /// Shard sites: the partition (worker) to fire in.
    pub part: u32,
    /// Shard sites: the chunk sequence number (within the worker's
    /// round) to fire at.
    pub seq: u32,
    /// I/O sites: how many consecutive attempts fail before the
    /// operation is allowed to succeed. Below the retry budget the
    /// fault is absorbed transparently; at or above it, the structured
    /// degradation path runs.
    pub io_failures: u32,
    /// [`FaultSite::MailboxStall`]: the longest the stalled worker
    /// sleeps before resuming, an upper bound that keeps runs finite
    /// even if the committer's watchdog is configured very long.
    pub stall_ms: u64,
}

impl FaultPlan {
    /// Expands `seed` into a plan, deterministically (splitmix64): the
    /// same seed always yields the same site and coordinates, so a CI
    /// seed sweep is reproducible anywhere.
    #[must_use]
    pub fn derive(seed: u64) -> FaultPlan {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let site = FAULT_SITES[usize::try_from(next() % 6).unwrap_or(0)];
        FaultPlan {
            site,
            round: u32::try_from(next() % 3).unwrap_or(0),
            part: u32::try_from(next() % 2).unwrap_or(0),
            seq: u32::try_from(next() % 3).unwrap_or(0),
            io_failures: 1 + u32::try_from(next() % 4).unwrap_or(0),
            stall_ms: 120_000,
        }
    }

    /// Parses a `DSM_FAULT_PLAN` spec. A bare integer is a seed for
    /// [`FaultPlan::derive`]; otherwise the grammar is:
    ///
    /// ```text
    /// worker-panic@r<R>.p<P>.s<S>
    /// mailbox-send-fail@r<R>.p<P>.s<S>
    /// mailbox-stall@r<R>.p<P>.s<S>[:<stall_ms>]
    /// journal-io:<failures>
    /// atomic-write-io:<failures>
    /// mmap-truncate
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (a usage error at the CLI) when
    /// the spec matches no site or its coordinates do not parse.
    pub fn from_spec(spec: &str) -> Result<FaultPlan, String> {
        let spec = spec.trim();
        if !spec.is_empty() && spec.bytes().all(|b| b.is_ascii_digit()) {
            return spec
                .parse::<u64>()
                .map(FaultPlan::derive)
                .map_err(|e| format!("fault seed '{spec}': {e}"));
        }
        let mut plan = FaultPlan {
            site: FaultSite::MmapTruncate,
            round: 0,
            part: 0,
            seq: 0,
            io_failures: 1,
            stall_ms: 120_000,
        };
        if spec == FaultSite::MmapTruncate.label() {
            return Ok(plan);
        }
        for site in [FaultSite::JournalIo, FaultSite::AtomicWriteIo] {
            if let Some(rest) = spec.strip_prefix(site.label()) {
                let n = rest.strip_prefix(':').ok_or_else(|| {
                    format!(
                        "fault spec '{spec}': expected '{}:<failures>'",
                        site.label()
                    )
                })?;
                plan.site = site;
                plan.io_failures = n
                    .parse()
                    .map_err(|e| format!("fault spec '{spec}': bad failure count: {e}"))?;
                return Ok(plan);
            }
        }
        for site in [
            FaultSite::WorkerPanic,
            FaultSite::MailboxSendFail,
            FaultSite::MailboxStall,
        ] {
            let Some(rest) = spec.strip_prefix(site.label()) else {
                continue;
            };
            let coords = rest.strip_prefix('@').ok_or_else(|| {
                format!(
                    "fault spec '{spec}': expected '{}@r<round>.p<part>.s<seq>'",
                    site.label()
                )
            })?;
            let (coords, stall) = match coords.split_once(':') {
                Some((c, ms)) if site == FaultSite::MailboxStall => {
                    let ms: u64 = ms
                        .parse()
                        .map_err(|e| format!("fault spec '{spec}': bad stall ms: {e}"))?;
                    (c, ms)
                }
                Some(_) => return Err(format!("fault spec '{spec}': unexpected ':' suffix")),
                None => (coords, plan.stall_ms),
            };
            let mut it = coords.split('.');
            let mut field = |prefix: &str| -> Result<u32, String> {
                it.next()
                    .and_then(|p| p.strip_prefix(prefix))
                    .ok_or_else(|| {
                        format!("fault spec '{spec}': expected 'r<round>.p<part>.s<seq>'")
                    })?
                    .parse()
                    .map_err(|e| format!("fault spec '{spec}': bad coordinate: {e}"))
            };
            plan.site = site;
            plan.round = field("r")?;
            plan.part = field("p")?;
            plan.seq = field("s")?;
            plan.stall_ms = stall;
            if it.next().is_some() {
                return Err(format!("fault spec '{spec}': trailing coordinates"));
            }
            return Ok(plan);
        }
        Err(format!(
            "fault spec '{spec}': unknown site (one of worker-panic, mailbox-send-fail, \
             mailbox-stall, journal-io, atomic-write-io, mmap-truncate, or a bare seed)"
        ))
    }

    /// Whether a shard-site plan fires at this chunk coordinate.
    #[must_use]
    pub fn fires_at(&self, round: u32, part: u32, seq: u32) -> bool {
        self.site.is_shard() && self.round == round && self.part == part && self.seq == seq
    }

    /// Renders the plan back as a spec string (diagnostics only).
    #[must_use]
    pub fn spec(&self) -> String {
        match self.site {
            FaultSite::MmapTruncate => self.site.label().to_owned(),
            FaultSite::JournalIo | FaultSite::AtomicWriteIo => {
                format!("{}:{}", self.site.label(), self.io_failures)
            }
            FaultSite::MailboxStall => format!(
                "{}@r{}.p{}.s{}:{}",
                self.site.label(),
                self.round,
                self.part,
                self.seq,
                self.stall_ms
            ),
            FaultSite::WorkerPanic | FaultSite::MailboxSendFail => {
                format!(
                    "{}@r{}.p{}.s{}",
                    self.site.label(),
                    self.round,
                    self.part,
                    self.seq
                )
            }
        }
    }
}

/// Fast gate: `true` only while a plan is installed. Relaxed is enough —
/// installation happens-before the run it arms through thread spawning.
static ARMED: AtomicBool = AtomicBool::new(false);

/// The installed plan plus its remaining transient-I/O budget.
static PLAN: Mutex<Option<PlanState>> = Mutex::new(None);

#[derive(Debug, Clone, Copy)]
struct PlanState {
    plan: FaultPlan,
    io_left: u32,
}

/// Installs (or, with `None`, clears) the process-wide fault plan.
/// Intended for binaries at startup and for the chaos harness between
/// sequential scenarios; library code only reads.
pub fn install(plan: Option<FaultPlan>) {
    let mut guard = PLAN
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    *guard = plan.map(|plan| PlanState {
        plan,
        io_left: plan.io_failures,
    });
    ARMED.store(plan.is_some(), Ordering::Release);
}

/// The installed plan, if any. One relaxed atomic load when disarmed —
/// safe to consult on warm paths.
#[must_use]
pub fn active() -> Option<FaultPlan> {
    if !ARMED.load(Ordering::Acquire) {
        return None;
    }
    PLAN.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .map(|s| s.plan)
}

/// Consumes one injected transient I/O failure for `site`, if the
/// installed plan targets it and its [`FaultPlan::io_failures`] budget
/// is not exhausted. Returns the error the failed operation should
/// report (`Interrupted`, i.e. `EINTR`).
#[must_use]
pub fn take_io_error(site: FaultSite) -> Option<std::io::Error> {
    if !ARMED.load(Ordering::Acquire) {
        return None;
    }
    let mut guard = PLAN
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let state = guard.as_mut()?;
    if state.plan.site != site || state.io_left == 0 {
        return None;
    }
    state.io_left -= 1;
    Some(std::io::Error::new(
        std::io::ErrorKind::Interrupted,
        format!("injected transient I/O failure ({})", site.label()),
    ))
}

/// Serializes tests (here and in dependent crates) that install the
/// process-wide plan, so parallel test threads cannot observe each
/// other's injections. Not part of the production surface.
#[doc(hidden)]
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic_and_covers_sites() {
        let a = FaultPlan::derive(42);
        let b = FaultPlan::derive(42);
        assert_eq!(a, b);
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64u64 {
            seen.insert(FaultPlan::derive(seed).site);
        }
        assert_eq!(
            seen.len(),
            FAULT_SITES.len(),
            "64 seeds should hit all sites"
        );
    }

    #[test]
    fn spec_round_trips() {
        for spec in [
            "worker-panic@r1.p0.s0",
            "mailbox-send-fail@r2.p1.s3",
            "mailbox-stall@r1.p0.s0:500",
            "journal-io:2",
            "atomic-write-io:4",
            "mmap-truncate",
        ] {
            let plan = FaultPlan::from_spec(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(plan.spec(), spec, "round trip");
        }
        // Default stall cap is appended by spec(); parse without it.
        let plan = FaultPlan::from_spec("mailbox-stall@r1.p2.s3").unwrap();
        assert_eq!(plan.site, FaultSite::MailboxStall);
        assert_eq!((plan.round, plan.part, plan.seq), (1, 2, 3));
        assert_eq!(plan.stall_ms, 120_000);
    }

    #[test]
    fn bare_seed_derives() {
        assert_eq!(FaultPlan::from_spec("17").unwrap(), FaultPlan::derive(17));
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "worker-panic",
            "worker-panic@r1.p0",
            "worker-panic@r1.p0.s0.x9",
            "worker-panic@r1.p0.s0:7",
            "journal-io",
            "journal-io:x",
            "no-such-site@r0.p0.s0",
            "",
        ] {
            assert!(FaultPlan::from_spec(bad).is_err(), "accepted: '{bad}'");
        }
    }

    #[test]
    fn fires_at_matches_exact_coordinates() {
        let plan = FaultPlan::from_spec("worker-panic@r1.p0.s2").unwrap();
        assert!(plan.fires_at(1, 0, 2));
        assert!(!plan.fires_at(1, 0, 1));
        assert!(!plan.fires_at(0, 0, 2));
        let io = FaultPlan::from_spec("journal-io:1").unwrap();
        assert!(!io.fires_at(0, 0, 0), "I/O sites have no chunk coordinates");
    }

    #[test]
    fn io_budget_is_consumed_once_installed() {
        // Serialized against sibling tests touching the global plan.
        let _guard = crate::fault::test_lock();
        install(Some(FaultPlan::from_spec("journal-io:2").unwrap()));
        assert!(
            take_io_error(FaultSite::AtomicWriteIo).is_none(),
            "wrong site"
        );
        assert!(take_io_error(FaultSite::JournalIo).is_some());
        assert!(take_io_error(FaultSite::JournalIo).is_some());
        assert!(
            take_io_error(FaultSite::JournalIo).is_none(),
            "budget spent"
        );
        install(None);
        assert!(active().is_none());
        assert!(take_io_error(FaultSite::JournalIo).is_none());
    }
}
