//! Address-space geometry: block and page sizes and the derived mappings.

use crate::{Addr, BlockAddr, ConfigError, PageAddr};

/// Block/page geometry of the shared address space.
///
/// The paper's base machine uses 64-byte cache blocks and 4-KB pages; both
/// are configurable here but must be powers of two with the page at least as
/// large as the block.
///
/// # Example
///
/// ```
/// use dsm_types::{Addr, Geometry};
/// let geo = Geometry::new(64, 4096)?;
/// assert_eq!(geo.blocks_per_page(), 64);
/// assert_eq!(geo.page_of_block(geo.block_of(Addr(4096 + 65))).0, 1);
/// # Ok::<(), dsm_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    block_bytes: u64,
    page_bytes: u64,
    block_shift: u32,
    page_shift: u32,
}

/// One reference's address decomposed once — block, page and the block's
/// index within the page — so the per-reference path derives all three
/// with two shifts and a mask up front instead of re-deriving them in
/// every layer (directory, NC, page cache) it passes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrParts {
    /// The block containing the address.
    pub block: BlockAddr,
    /// The page containing the address.
    pub page: PageAddr,
    /// The block's index within its page, in `0..blocks_per_page()`.
    pub block_in_page: u64,
}

impl Geometry {
    /// Creates a geometry with the given block and page sizes in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if either size is not a power of two, is
    /// zero, or if the page is smaller than the block.
    pub fn new(block_bytes: u64, page_bytes: u64) -> Result<Self, ConfigError> {
        if block_bytes == 0 || !block_bytes.is_power_of_two() {
            return Err(ConfigError::new(format!(
                "block size must be a nonzero power of two, got {block_bytes}"
            )));
        }
        if page_bytes == 0 || !page_bytes.is_power_of_two() {
            return Err(ConfigError::new(format!(
                "page size must be a nonzero power of two, got {page_bytes}"
            )));
        }
        if page_bytes < block_bytes {
            return Err(ConfigError::new(format!(
                "page size {page_bytes} must be >= block size {block_bytes}"
            )));
        }
        Ok(Geometry {
            block_bytes,
            page_bytes,
            block_shift: block_bytes.trailing_zeros(),
            page_shift: page_bytes.trailing_zeros(),
        })
    }

    /// The paper's base geometry: 64-byte blocks, 4-KB pages.
    #[must_use]
    pub fn paper_default() -> Self {
        Geometry::new(64, 4096).expect("constants are valid")
    }

    /// Block size in bytes.
    #[must_use]
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Page size in bytes.
    #[must_use]
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Number of cache blocks in one page.
    #[must_use]
    pub fn blocks_per_page(&self) -> u64 {
        self.page_bytes >> self.block_shift
    }

    /// The block containing byte address `addr`.
    #[must_use]
    #[inline]
    pub fn block_of(&self, addr: Addr) -> BlockAddr {
        BlockAddr(addr.0 >> self.block_shift)
    }

    /// The page containing byte address `addr`.
    #[must_use]
    pub fn page_of(&self, addr: Addr) -> PageAddr {
        PageAddr(addr.0 >> self.page_shift)
    }

    /// Decomposes `addr` into block, page and block-within-page in one
    /// step (see [`AddrParts`]).
    ///
    /// # Example
    ///
    /// ```
    /// use dsm_types::{Addr, Geometry};
    /// let geo = Geometry::paper_default();
    /// let p = geo.decompose(Addr(4096 + 65));
    /// assert_eq!(p.block, geo.block_of(Addr(4096 + 65)));
    /// assert_eq!(p.page.0, 1);
    /// assert_eq!(p.block_in_page, 1);
    /// ```
    #[must_use]
    #[inline]
    pub fn decompose(&self, addr: Addr) -> AddrParts {
        let block = BlockAddr(addr.0 >> self.block_shift);
        AddrParts {
            block,
            page: PageAddr(addr.0 >> self.page_shift),
            block_in_page: block.0 & (self.blocks_per_page() - 1),
        }
    }

    /// The page containing block `block`.
    #[must_use]
    #[inline]
    pub fn page_of_block(&self, block: BlockAddr) -> PageAddr {
        PageAddr(block.0 >> (self.page_shift - self.block_shift))
    }

    /// The first block of page `page`.
    #[must_use]
    pub fn first_block_of_page(&self, page: PageAddr) -> BlockAddr {
        BlockAddr(page.0 << (self.page_shift - self.block_shift))
    }

    /// The byte address of the start of block `block`.
    #[must_use]
    pub fn block_base(&self, block: BlockAddr) -> Addr {
        Addr(block.0 << self.block_shift)
    }

    /// The byte address of the start of page `page`.
    #[must_use]
    pub fn page_base(&self, page: PageAddr) -> Addr {
        Addr(page.0 << self.page_shift)
    }

    /// The index of `block` within its page, in `0..blocks_per_page()`.
    #[must_use]
    pub fn block_index_in_page(&self, block: BlockAddr) -> u64 {
        block.0 & (self.blocks_per_page() - 1)
    }

    /// Number of pages needed to hold `bytes` bytes (rounded up).
    #[must_use]
    pub fn pages_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.page_bytes)
    }

    /// Number of blocks needed to hold `bytes` bytes (rounded up).
    #[must_use]
    pub fn blocks_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.block_bytes)
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_64b_4k() {
        let g = Geometry::paper_default();
        assert_eq!(g.block_bytes(), 64);
        assert_eq!(g.page_bytes(), 4096);
        assert_eq!(g.blocks_per_page(), 64);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(Geometry::new(48, 4096).is_err());
        assert!(Geometry::new(64, 1000).is_err());
        assert!(Geometry::new(0, 4096).is_err());
        assert!(Geometry::new(64, 0).is_err());
    }

    #[test]
    fn rejects_page_smaller_than_block() {
        assert!(Geometry::new(128, 64).is_err());
    }

    #[test]
    fn block_and_page_mapping() {
        let g = Geometry::paper_default();
        assert_eq!(g.block_of(Addr(0)).0, 0);
        assert_eq!(g.block_of(Addr(63)).0, 0);
        assert_eq!(g.block_of(Addr(64)).0, 1);
        assert_eq!(g.page_of(Addr(4095)).0, 0);
        assert_eq!(g.page_of(Addr(4096)).0, 1);
    }

    #[test]
    fn page_of_block_consistent_with_page_of_addr() {
        let g = Geometry::paper_default();
        for a in [0u64, 63, 64, 4095, 4096, 123_456_789] {
            let addr = Addr(a);
            assert_eq!(g.page_of_block(g.block_of(addr)), g.page_of(addr));
        }
    }

    #[test]
    fn first_block_of_page_inverts_page_of_block() {
        let g = Geometry::paper_default();
        let p = PageAddr(7);
        let b = g.first_block_of_page(p);
        assert_eq!(g.page_of_block(b), p);
        assert_eq!(g.block_index_in_page(b), 0);
    }

    #[test]
    fn block_index_in_page_wraps() {
        let g = Geometry::paper_default();
        assert_eq!(g.block_index_in_page(BlockAddr(0)), 0);
        assert_eq!(g.block_index_in_page(BlockAddr(63)), 63);
        assert_eq!(g.block_index_in_page(BlockAddr(64)), 0);
        assert_eq!(g.block_index_in_page(BlockAddr(65)), 1);
    }

    #[test]
    fn bases_round_down() {
        let g = Geometry::paper_default();
        assert_eq!(g.block_base(BlockAddr(2)).0, 128);
        assert_eq!(g.page_base(PageAddr(2)).0, 8192);
    }

    #[test]
    fn size_rounding() {
        let g = Geometry::paper_default();
        assert_eq!(g.pages_for(1), 1);
        assert_eq!(g.pages_for(4096), 1);
        assert_eq!(g.pages_for(4097), 2);
        assert_eq!(g.blocks_for(1), 1);
        assert_eq!(g.blocks_for(64), 1);
        assert_eq!(g.blocks_for(65), 2);
        assert_eq!(g.pages_for(0), 0);
    }

    #[test]
    fn equal_block_and_page_size_allowed() {
        let g = Geometry::new(64, 64).unwrap();
        assert_eq!(g.blocks_per_page(), 1);
        assert_eq!(g.block_index_in_page(BlockAddr(5)), 0);
    }
}
