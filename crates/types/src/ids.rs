//! Processor and cluster identifiers, and the machine topology.

use core::fmt;

use crate::ConfigError;

/// A cluster (node) identifier, `0..Topology::clusters()`.
///
/// A cluster is a small bus-based SMP; the paper's machine has eight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClusterId(pub u16);

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// A processor's index within its cluster, `0..Topology::procs_per_cluster()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LocalProcId(pub u16);

impl fmt::Display for LocalProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A machine-global processor identifier, `0..Topology::total_procs()`.
///
/// The mapping to `(cluster, local)` pairs is owned by [`Topology`]:
/// processors are numbered cluster-major, so cluster `c` holds processors
/// `c*P .. (c+1)*P` where `P` is the per-cluster processor count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcId(pub u16);

impl ProcId {
    /// Creates a processor id from a raw index.
    #[must_use]
    pub fn new(index: u16) -> Self {
        ProcId(index)
    }

    /// The raw index as a usize, for table lookups.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// The machine shape: number of clusters and processors per cluster.
///
/// # Example
///
/// ```
/// use dsm_types::{ProcId, Topology};
/// let t = Topology::paper_default(); // 8 clusters x 4 processors
/// assert_eq!(t.total_procs(), 32);
/// assert_eq!(t.cluster_of(ProcId(13)).0, 3);
/// assert_eq!(t.local_of(ProcId(13)).0, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    clusters: u16,
    procs_per_cluster: u16,
}

impl Topology {
    /// Creates a topology with `clusters` clusters of `procs_per_cluster`
    /// processors each.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if either count is zero or the total number
    /// of processors overflows `u16`.
    pub fn new(clusters: u16, procs_per_cluster: u16) -> Result<Self, ConfigError> {
        if clusters == 0 || procs_per_cluster == 0 {
            return Err(ConfigError::new(
                "topology requires at least one cluster and one processor per cluster",
            ));
        }
        if clusters.checked_mul(procs_per_cluster).is_none() {
            return Err(ConfigError::new(format!(
                "topology {clusters}x{procs_per_cluster} overflows the processor id space"
            )));
        }
        Ok(Topology {
            clusters,
            procs_per_cluster,
        })
    }

    /// The paper's machine: 8 clusters of 4 processors (32 total).
    #[must_use]
    pub fn paper_default() -> Self {
        Topology::new(8, 4).expect("constants are valid")
    }

    /// Number of clusters.
    #[must_use]
    pub fn clusters(&self) -> u16 {
        self.clusters
    }

    /// Number of processors in each cluster.
    #[must_use]
    pub fn procs_per_cluster(&self) -> u16 {
        self.procs_per_cluster
    }

    /// Total processor count across the machine.
    #[must_use]
    #[inline]
    pub fn total_procs(&self) -> u16 {
        self.clusters * self.procs_per_cluster
    }

    /// The cluster containing global processor `proc`.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range for this topology.
    #[must_use]
    pub fn cluster_of(&self, proc: ProcId) -> ClusterId {
        assert!(
            proc.0 < self.total_procs(),
            "processor {proc} out of range for {self}"
        );
        ClusterId(proc.0 / self.procs_per_cluster)
    }

    /// The within-cluster index of global processor `proc`.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range for this topology.
    #[must_use]
    pub fn local_of(&self, proc: ProcId) -> LocalProcId {
        assert!(
            proc.0 < self.total_procs(),
            "processor {proc} out of range for {self}"
        );
        LocalProcId(proc.0 % self.procs_per_cluster)
    }

    /// Splits a global processor id into `(cluster, local)` in one step —
    /// the per-reference form of [`Topology::cluster_of`] +
    /// [`Topology::local_of`], with a single range check and a shift/mask
    /// fast path when the cluster width is a power of two.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range for this topology.
    #[must_use]
    #[inline]
    pub fn split_of(&self, proc: ProcId) -> (ClusterId, LocalProcId) {
        assert!(
            proc.0 < self.total_procs(),
            "processor {proc} out of range for {self}"
        );
        let ppc = self.procs_per_cluster;
        if ppc.is_power_of_two() {
            let shift = ppc.trailing_zeros();
            (ClusterId(proc.0 >> shift), LocalProcId(proc.0 & (ppc - 1)))
        } else {
            (ClusterId(proc.0 / ppc), LocalProcId(proc.0 % ppc))
        }
    }

    /// The global processor id for `(cluster, local)`.
    ///
    /// # Panics
    ///
    /// Panics if either component is out of range.
    #[must_use]
    pub fn proc_of(&self, cluster: ClusterId, local: LocalProcId) -> ProcId {
        assert!(cluster.0 < self.clusters, "cluster {cluster} out of range");
        assert!(
            local.0 < self.procs_per_cluster,
            "local processor {local} out of range"
        );
        ProcId(cluster.0 * self.procs_per_cluster + local.0)
    }

    /// Iterates over all cluster ids.
    pub fn cluster_ids(&self) -> impl Iterator<Item = ClusterId> {
        (0..self.clusters).map(ClusterId)
    }

    /// Iterates over all global processor ids.
    pub fn proc_ids(&self) -> impl Iterator<Item = ProcId> {
        (0..self.total_procs()).map(ProcId)
    }

    /// Iterates over the global processor ids belonging to `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn procs_in(&self, cluster: ClusterId) -> impl Iterator<Item = ProcId> {
        assert!(cluster.0 < self.clusters, "cluster {cluster} out of range");
        let base = cluster.0 * self.procs_per_cluster;
        (base..base + self.procs_per_cluster).map(ProcId)
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::paper_default()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.clusters, self.procs_per_cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_8x4() {
        let t = Topology::paper_default();
        assert_eq!(t.clusters(), 8);
        assert_eq!(t.procs_per_cluster(), 4);
        assert_eq!(t.total_procs(), 32);
    }

    #[test]
    fn rejects_zero_dimensions() {
        assert!(Topology::new(0, 4).is_err());
        assert!(Topology::new(8, 0).is_err());
    }

    #[test]
    fn rejects_overflowing_proc_space() {
        assert!(Topology::new(u16::MAX, 2).is_err());
    }

    #[test]
    fn cluster_and_local_mapping_roundtrip() {
        let t = Topology::paper_default();
        for p in t.proc_ids() {
            let c = t.cluster_of(p);
            let l = t.local_of(p);
            assert_eq!(t.proc_of(c, l), p);
        }
    }

    #[test]
    fn procs_in_cluster_are_contiguous() {
        let t = Topology::paper_default();
        let procs: Vec<_> = t.procs_in(ClusterId(2)).collect();
        assert_eq!(procs, vec![ProcId(8), ProcId(9), ProcId(10), ProcId(11)]);
        for p in procs {
            assert_eq!(t.cluster_of(p), ClusterId(2));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cluster_of_panics_out_of_range() {
        let _ = Topology::paper_default().cluster_of(ProcId(32));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn proc_of_panics_on_bad_local() {
        let t = Topology::paper_default();
        let _ = t.proc_of(ClusterId(0), LocalProcId(4));
    }

    #[test]
    fn iterators_cover_machine() {
        let t = Topology::new(3, 5).unwrap();
        assert_eq!(t.cluster_ids().count(), 3);
        assert_eq!(t.proc_ids().count(), 15);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Topology::paper_default().to_string(), "8x4");
        assert_eq!(ClusterId(3).to_string(), "C3");
        assert_eq!(ProcId(3).to_string(), "P3");
        assert_eq!(LocalProcId(3).to_string(), "p3");
    }
}
