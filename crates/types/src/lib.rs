//! Shared vocabulary types for the clustered-DSM simulator.
//!
//! This crate defines the address-space geometry (blocks and pages),
//! identifiers for processors and clusters, memory operations, and the
//! configuration error type used across the workspace. It deliberately has
//! no simulation logic: every other crate builds on these types, so they are
//! small, `Copy` where possible, and implement the common std traits.
//!
//! # Example
//!
//! ```
//! use dsm_types::{Addr, Geometry, MemOp, MemRef, ProcId, Topology};
//!
//! let geo = Geometry::new(64, 4096).unwrap();
//! let topo = Topology::new(8, 4).unwrap();
//! let r = MemRef::new(ProcId::new(5), MemOp::Write, Addr(0x1_2345));
//! assert_eq!(geo.block_of(r.addr).0, 0x1_2345 / 64);
//! assert_eq!(geo.page_of(r.addr).0, 0x1_2345 / 4096);
//! assert_eq!(topo.cluster_of(r.proc).0, 1);
//! ```

// `deny`, not `forbid`: the `prefetch` module opts back in for the
// prefetch intrinsics alone (see its module docs for the safety story).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod cluster_set;
pub mod decoded;
pub mod error;
pub mod fastmap;
pub mod fault;
pub mod geometry;
pub mod ids;
pub mod op;
pub mod prefetch;

pub use addr::{Addr, BlockAddr, PageAddr};
pub use cluster_set::{ClusterSet, ClusterSetIter};
pub use decoded::DecodedRef;
pub use error::{ConfigError, DsmError, ErrorKind};
pub use fastmap::{DenseMap, FxBuildHasher, FxHashMap, FxHasher};
pub use fault::{FaultPlan, FaultSite};
pub use geometry::{AddrParts, Geometry};
pub use ids::{ClusterId, LocalProcId, ProcId, Topology};
pub use op::{MemOp, MemRef};
pub use prefetch::{prefetch_read, prefetch_slice};
