//! Memory operations and references as produced by trace generators.

use core::fmt;

use crate::{Addr, ProcId};

/// The kind of a shared-memory access.
///
/// The simulator is trace-driven over *shared data* references only
/// (instruction fetches and private/stack data never leave the processor
/// cache model in the paper's methodology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// A load from shared data.
    Read,
    /// A store to shared data.
    Write,
}

impl MemOp {
    /// Whether this operation is a write.
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(self, MemOp::Write)
    }
}

impl fmt::Display for MemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemOp::Read => f.write_str("R"),
            MemOp::Write => f.write_str("W"),
        }
    }
}

/// One shared-memory reference from one processor.
///
/// # Example
///
/// ```
/// use dsm_types::{Addr, MemOp, MemRef, ProcId};
/// let r = MemRef::new(ProcId(3), MemOp::Read, Addr(0x100));
/// assert!(!r.op.is_write());
/// assert_eq!(r.to_string(), "P3 R 0x100");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// The issuing processor.
    pub proc: ProcId,
    /// Load or store.
    pub op: MemOp,
    /// The byte address accessed.
    pub addr: Addr,
}

impl MemRef {
    /// Creates a reference.
    #[must_use]
    pub fn new(proc: ProcId, op: MemOp, addr: Addr) -> Self {
        MemRef { proc, op, addr }
    }

    /// Convenience constructor for a read.
    #[must_use]
    pub fn read(proc: ProcId, addr: Addr) -> Self {
        MemRef::new(proc, MemOp::Read, addr)
    }

    /// Convenience constructor for a write.
    #[must_use]
    pub fn write(proc: ProcId, addr: Addr) -> Self {
        MemRef::new(proc, MemOp::Write, addr)
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.proc, self.op, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_write_discriminates() {
        assert!(MemOp::Write.is_write());
        assert!(!MemOp::Read.is_write());
    }

    #[test]
    fn constructors_set_fields() {
        let r = MemRef::read(ProcId(1), Addr(64));
        assert_eq!(r.op, MemOp::Read);
        let w = MemRef::write(ProcId(2), Addr(128));
        assert_eq!(w.op, MemOp::Write);
        assert_eq!(w.proc, ProcId(2));
        assert_eq!(w.addr, Addr(128));
    }

    #[test]
    fn display_is_compact() {
        let r = MemRef::write(ProcId(7), Addr(0x40));
        assert_eq!(r.to_string(), "P7 W 0x40");
    }
}
