//! Software prefetch hints for the batched replay pipeline.
//!
//! Replay processes decoded references in batches of 16; while batch `N`
//! runs through the coherence layers, the lines batch `N+1` will touch —
//! directory entries, cache tag rows — can already be on their way from
//! DRAM. These helpers issue non-faulting prefetch hints (`prefetcht0` on
//! x86-64, `prfm pldl1keep` on AArch64) and compile to nothing on other
//! architectures, so callers sprinkle them freely without `cfg` noise.
//!
//! A prefetch hint never dereferences: it is architecturally a no-op on
//! an unmapped address, and the wrappers below only ever form addresses
//! from live references, so the `unsafe` here is confined to the
//! intrinsic call itself. This module is the only place in the crate
//! allowed to use `unsafe` (the crate is otherwise `deny(unsafe_code)`).
#![allow(unsafe_code)]

/// Hints the CPU to pull the cache line holding `r` into L1.
///
/// No-op on architectures without a stable prefetch intrinsic.
#[inline(always)]
pub fn prefetch_read<T>(r: &T) {
    let p: *const T = r;
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch does not dereference; any address is allowed.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p.cast::<i8>());
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: prfm is a hint; it cannot fault and touches no registers.
    unsafe {
        core::arch::asm!(
            "prfm pldl1keep, [{addr}]",
            addr = in(reg) p,
            options(nostack, preserves_flags, readonly)
        );
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

/// Prefetches element `i` of `s`, silently doing nothing when `i` is out
/// of bounds — the caller is predicting the future and may be wrong.
#[inline(always)]
pub fn prefetch_slice<T>(s: &[T], i: usize) {
    if let Some(r) = s.get(i) {
        prefetch_read(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_harmless() {
        let v = vec![1u64, 2, 3];
        prefetch_read(&v[0]);
        prefetch_slice(&v, 2);
        prefetch_slice(&v, 1_000_000); // out of bounds: no-op
        assert_eq!(v, [1, 2, 3]);
    }
}
