//! Page-cache thrashing and the adaptive relocation threshold, on the
//! paper's worst case: Radix's scattered permutation writes.
//!
//! A fixed threshold of 32 lets the page cache thrash (pages relocated,
//! evicted before amortizing the 225-cycle relocation, relocated again);
//! the adaptive policy detects negative amortization through per-frame
//! hit counters and raises the threshold by 8 per monitoring window.
//!
//! Run with: `cargo run -p dsm-core --release --example adaptive_thrashing`

use dsm_core::{runner::run_workload, PcSize, SystemSpec, ThresholdPolicy};
use dsm_trace::{workloads::Radix, Scale, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let radix = Radix::with_keys(1 << 17); // 128K keys: fast but thrashy
    println!(
        "workload: {} ({}), shared data {:.2} MB",
        radix.name(),
        radix.params(),
        radix.shared_bytes() as f64 / (1024.0 * 1024.0)
    );
    // A deliberately tight page cache (1/16 of the data set) so the
    // destination array's page working set overwhelms it; the paper's
    // Figure 6 uses 1/5 at full problem size for the same effect.
    let pc = PcSize::DataFraction(16);

    let policies = [
        ("fixed(32)", ThresholdPolicy::Fixed(32)),
        ("adaptive(32)", ThresholdPolicy::Adaptive { initial: 32 }),
        ("adaptive(64)", ThresholdPolicy::Adaptive { initial: 64 }),
    ];

    println!(
        "\n{:<14} {:>12} {:>12} {:>14} {:>12}",
        "policy", "relocations", "PC hits", "reloc-ovhd%", "miss%"
    );
    for (label, policy) in policies {
        let spec = SystemSpec::ncp(pc).with_threshold(policy);
        let r = run_workload(&spec, &radix, Scale::full())?;
        println!(
            "{:<14} {:>12} {:>12} {:>14.3} {:>12.3}",
            label,
            r.metrics.relocations,
            r.metrics.pc_read_hits + r.metrics.pc_write_hits,
            r.relocation_overhead * 100.0,
            (r.read_miss_ratio + r.write_miss_ratio) * 100.0
        );
    }

    println!(
        "\nFigure 6 of the paper (binary `fig6`) runs the fixed-vs-adaptive\n\
         comparison across all eight benchmarks; Figure 11 (binary `fig11`)\n\
         shows why `vxp`'s eager victimization counters prefer threshold 64."
    );
    Ok(())
}
