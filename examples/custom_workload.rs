//! Bring your own workload: the `Workload` trait makes the simulator a
//! general tool, not just a SPLASH-2 replayer.
//!
//! This example implements a producer-consumer pipeline — cluster 0's
//! processors write batches that every other cluster then reads — a
//! pattern dominated by *coherence* (necessary) misses that no remote-data
//! cache can remove. It then shows that, exactly as the paper argues for
//! FFT, a slow DRAM NC makes such a workload *worse* than no NC at all,
//! while an SRAM NC is harmless.
//!
//! Run with: `cargo run -p dsm-core --release --example custom_workload`

use dsm_core::{runner::run_workload, SystemSpec};
use dsm_trace::{PhaseBuilder, Scale, Workload};
use dsm_types::{Addr, MemRef, ProcId, Topology};

/// A producer-consumer pipeline over a ring of shared batches.
struct Pipeline {
    batches: u64,
    batch_bytes: u64,
    rounds: u64,
}

impl Workload for Pipeline {
    fn name(&self) -> &'static str {
        "pipeline"
    }

    fn params(&self) -> String {
        format!(
            "{} batches x {} KB x {} rounds",
            self.batches,
            self.batch_bytes / 1024,
            self.rounds
        )
    }

    fn shared_bytes(&self) -> u64 {
        self.batches * self.batch_bytes
    }

    fn generate(&self, topo: &Topology, scale: Scale) -> Vec<MemRef> {
        let producers: Vec<ProcId> = topo.procs_in(dsm_types::ClusterId(0)).collect();
        let mut trace = Vec::new();
        let mut phase = PhaseBuilder::new(topo);
        for round in 0..scale.apply(self.rounds) {
            let batch = round % self.batches;
            let base = Addr(batch * self.batch_bytes);
            // Producers (cluster 0) write the batch...
            for (i, &p) in producers.iter().enumerate() {
                let chunk = self.batch_bytes / producers.len() as u64;
                phase.write_run(p, base.offset(i as u64 * chunk), chunk / 8, 8);
            }
            phase.interleave_into(&mut trace);
            // ...and one processor of every other cluster consumes it.
            for c in topo.cluster_ids().skip(1) {
                let reader = topo.procs_in(c).next().expect("nonempty cluster");
                phase.read_run(reader, base, self.batch_bytes / 8, 8);
            }
            phase.interleave_into(&mut trace);
        }
        trace
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipeline = Pipeline {
        batches: 8,
        batch_bytes: 64 * 1024,
        rounds: 32,
    };
    println!("workload: {} ({})", pipeline.name(), pipeline.params());

    println!(
        "\n{:<8} {:>10} {:>10} {:>14}",
        "system", "necessary", "capacity", "remote stall"
    );
    for spec in [SystemSpec::base(), SystemSpec::vb(), SystemSpec::ncd()] {
        let r = run_workload(&spec, &pipeline, Scale::full())?;
        println!(
            "{:<8} {:>10} {:>10} {:>14}",
            r.system,
            r.metrics.remote_read_necessary,
            r.metrics.remote_read_capacity,
            r.remote_read_stall
        );
    }

    println!(
        "\nEvery producer write invalidates the consumers' copies, so the\n\
         misses are *necessary*: the DRAM NC only adds its tag-check to each\n\
         one (the paper's FFT effect), while the SRAM victim NC stays off\n\
         the critical path."
    );
    Ok(())
}
