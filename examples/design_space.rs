//! The paper's central design-space question, on two contrasting
//! workloads: for a fixed DRAM budget, should a cluster buy a large slow
//! network cache (`NCD`) or a small fast SRAM victim cache backed by a
//! page cache in main memory (`vbp`)?
//!
//! Run with: `cargo run -p dsm-core --release --example design_space`

use dsm_core::{runner::run_workload, PcSize, SystemSpec};
use dsm_trace::{
    workloads::{Lu, Raytrace},
    Scale, Workload,
};

fn evaluate(workload: &dyn Workload, character: &str) -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "== {} ({character}), {:.1} MB shared ==",
        workload.name(),
        workload.shared_bytes() as f64 / (1024.0 * 1024.0)
    );
    // Equal DRAM on both sides: a 512-KB DRAM NC, or a 512-KB page cache
    // behind a 16-KB SRAM victim NC.
    let contenders = [
        SystemSpec::infinite_dram(), // normalization baseline
        SystemSpec::ncd(),
        SystemSpec::vbp(PcSize::Bytes(512 * 1024)),
    ];
    let mut baseline = None;
    for spec in &contenders {
        let r = run_workload(spec, workload, Scale::new(0.5)?)?;
        let stall = r.remote_read_stall as f64;
        match baseline {
            None => {
                baseline = Some(stall.max(1.0));
                println!(
                    "  {:<10} stall {:>12} (baseline)",
                    r.system, r.remote_read_stall
                );
            }
            Some(b) => println!(
                "  {:<10} stall {:>12} ({:.3}x), relocation overhead {:.2}%",
                r.system,
                r.remote_read_stall,
                stall / b,
                r.relocation_overhead * 100.0
            ),
        }
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Regular, high spatial locality: the page-cache side should win
    // (little fragmentation, hits at local-DRAM speed off the miss path).
    evaluate(&Lu::with_matrix(512), "regular, high spatial locality")?;

    // Irregular, huge sparse read working set: the paper's hard case.
    // Neither 512-KB design recovers much of it — the page-cache system
    // pays relocation overhead and fragmentation, the DRAM NC pays a tag
    // check on every one of the many misses — so the two end up close,
    // far from the ideal baseline.
    evaluate(&Raytrace::with_scene_mb(8), "irregular, sparse working set")?;

    println!(
        "Figure 9 of the paper (binary `fig9`) runs this comparison across\n\
         all eight benchmarks at full scale."
    );
    Ok(())
}
