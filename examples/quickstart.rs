//! Quickstart: simulate one SPLASH-2-style workload on three remote-data
//! cache designs and compare the paper's metrics.
//!
//! Run with: `cargo run -p dsm-core --release --example quickstart`

use dsm_core::{runner::run_workload, SystemSpec};
use dsm_trace::{workloads::Fft, Scale, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4K-point FFT: small enough to finish instantly, structured like
    // the paper's 64K-point run (use `Fft::default()` for that one).
    let fft = Fft::with_points(1 << 12);
    println!(
        "workload: {} ({}), shared data {:.2} MB",
        fft.name(),
        fft.params(),
        fft.shared_bytes() as f64 / (1024.0 * 1024.0)
    );

    // Three design points from the paper:
    //   base - no remote-data caching at all
    //   vb   - 16-KB SRAM network *victim* cache (the paper's proposal)
    //   NCD  - 512-KB DRAM network cache with full inclusion (NUMA-Q style)
    let systems = [SystemSpec::base(), SystemSpec::vb(), SystemSpec::ncd()];

    println!(
        "\n{:<8} {:>12} {:>12} {:>14} {:>12}",
        "system", "read-miss%", "write-miss%", "remote stall", "traffic"
    );
    for spec in &systems {
        let r = run_workload(spec, &fft, Scale::full())?;
        println!(
            "{:<8} {:>12.3} {:>12.3} {:>14} {:>12}",
            r.system,
            r.read_miss_ratio * 100.0,
            r.write_miss_ratio * 100.0,
            r.remote_read_stall,
            r.remote_traffic
        );
    }

    println!(
        "\nThe victim NC serves conflict/capacity misses at bus speed (1 cycle)\n\
         while the DRAM NC charges 13 cycles on hits and adds 3 cycles to\n\
         every miss - Table 1 of the paper, reproduced by `--bin tables`."
    );
    Ok(())
}
