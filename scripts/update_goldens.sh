#!/usr/bin/env bash
# Regenerates the committed goldens that the CI shard-determinism job
# diffs against (ci/golden/). Run after any intentional change to the
# simulator's metrics or to the reproduce output format, and commit the
# result. The goldens are produced by the single-thread oracle
# (--shard-workers 1 --jobs 1); CI then requires every other
# shard-worker / sweep-job combination to match them byte for byte.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${SCALE:-0.05}"

cargo build --release -p dsm-bench --bin reproduce

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT
target/release/reproduce --scale "$SCALE" --shard-workers 1 --jobs 1 \
  --out "$out" > "$out/stdout.txt"

# Single-component subset golden: the fft-only run CI replays at
# --shard-workers 2 and 4 to pin the intra-component rounds engine.
mkdir -p "$out/fft"
target/release/reproduce --scale "$SCALE" --workloads fft \
  --shard-workers 1 --jobs 1 --out "$out/fft" > "$out/fft/stdout.txt"

mkdir -p ci/golden
cp "$out/reproduce_full.json" "ci/golden/reproduce_full.scale${SCALE}.json"
cp "$out/stdout.txt" "ci/golden/reproduce_stdout.scale${SCALE}.txt"
cp "$out/fft/reproduce_full.json" "ci/golden/reproduce_full.scale${SCALE}.fft.json"
cp "$out/fft/stdout.txt" "ci/golden/reproduce_stdout.scale${SCALE}.fft.txt"
echo "goldens updated under ci/golden/ (scale ${SCALE})"
