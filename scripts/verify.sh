#!/usr/bin/env bash
# Full verification gate: what CI (and the driver) runs.
#
#   scripts/verify.sh          # tier-1 + lints
#   scripts/verify.sh --fast   # skip the release build (debug tests + lints)
#
# Everything must pass offline — the workspace has no external
# dependencies by design.

set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

if [[ $fast -eq 0 ]]; then
  echo "== cargo build --release =="
  cargo build --release
fi

echo "== cargo test =="
cargo test -q

echo "verify: all checks passed"
