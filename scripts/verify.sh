#!/usr/bin/env bash
# Full verification gate: what CI (and the driver) runs.
#
#   scripts/verify.sh          # tier-1 + lints
#   scripts/verify.sh --fast   # skip the release build (debug tests + lints)
#
# Everything must pass offline — the workspace has no external
# dependencies by design.

set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== hot-path hash gate =="
# The per-reference simulation path must stay on dsm_types::DenseMap /
# FxHashMap: a default-hasher std HashMap re-introduced here would undo
# the hot-path overhaul (SipHash + per-lookup overhead) without failing
# any functional test. Test modules are exempt.
hot_paths=(
  crates/directory/src/full_map.rs
  crates/directory/src/limited.rs
  crates/directory/src/placement.rs
  crates/directory/src/rnuma.rs
  crates/core/src/system.rs
  crates/core/src/nc
  crates/core/src/page_cache
  crates/core/src/obs/mod.rs
)
if grep -rn "std::collections::HashMap" "${hot_paths[@]}" | grep -v "^[^:]*:[0-9]*: *//"; then
  echo "error: default-hasher std HashMap on a per-reference path (use DenseMap/FxHashMap)"
  exit 1
fi

echo "== mailbox hot-path allocation gate =="
# The sharded-replay mailbox moves one message per metrics chunk; its
# send/receive path must stay allocation-free (slots are preallocated at
# channel construction). A Vec::push, a HashMap, or a String on that
# path would put an allocator call inside every cross-thread event.
# Test modules (below #[cfg(test)]) are exempt.
if awk '/#\[cfg\(test\)\]/{exit} {print "crates/core/src/shard/mailbox.rs:"FNR": "$0}' \
    crates/core/src/shard/mailbox.rs \
    | grep -E '\.push\(|\.to_vec\(|HashMap|String::|vec!|Vec::new|\.clone\('; then
  echo "error: allocation on the mailbox send/receive path (preallocate in channel())"
  exit 1
fi

echo "== panic-free fallible-surface gate =="
# Structured-error surfaces must not regress to unwrap()/expect(): the
# trace codec, the sweep engine and its crash-safety journal, and every
# binary report DsmError (exit codes 2 usage / 3 bad input / 4 internal)
# instead of panicking. Test modules (below #[cfg(test)]) are exempt.
fallible=(
  crates/trace/src/codec.rs
  crates/bench/src/sweep.rs
  crates/bench/src/journal.rs
)
while IFS= read -r f; do fallible+=("$f"); done < <(find crates -path '*/src/bin/*.rs' | sort)
bad=0
for f in "${fallible[@]}"; do
  if awk -v f="$f" '/#\[cfg\(test\)\]/{exit} {print f":"FNR": "$0}' "$f" \
      | grep -E '\.unwrap\(\)|\.expect\('; then
    bad=1
  fi
done
if [[ $bad -ne 0 ]]; then
  echo "error: unwrap()/expect() on a structured-error surface (return DsmError instead)"
  exit 1
fi

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

if [[ $fast -eq 0 ]]; then
  echo "== cargo build --release =="
  cargo build --release
fi

echo "== cargo test =="
cargo test -q

echo "verify: all checks passed"
