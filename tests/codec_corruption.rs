//! Property tests for the `DSMT`/`DSMT2` trace codec under corruption:
//! **no** truncation or bit-flip of a valid trace file may panic the
//! decoder, and no *truncation* may silently decode to a trace of the
//! wrong length — the decoder must either return the original reference
//! count or an error.
//!
//! Bit-flips are weaker by nature (a flipped address bit still decodes
//! to a well-formed trace), so for them the contract is: never panic,
//! and any successful decode must be consistent with the length the
//! (possibly corrupted) header declares.

use std::panic::{catch_unwind, AssertUnwindSafe};

use dsm_trace::rng::TraceRng;
use dsm_trace::{read_shared, read_trace, write_shared, write_trace, SharedTrace};
use dsm_types::{Addr, Geometry, MemOp, MemRef, ProcId, Topology};

fn sample_refs(topo: &Topology) -> Vec<MemRef> {
    let mut rng = TraceRng::for_workload("codec-corruption", 7);
    (0..257)
        .map(|_| {
            let proc = ProcId(rng.below(u64::from(topo.total_procs())) as u16);
            let op = if rng.chance(0.3) {
                MemOp::Write
            } else {
                MemOp::Read
            };
            MemRef::new(proc, op, Addr(rng.below(1 << 20) & !3))
        })
        .collect()
}

fn encoded(format: u16) -> (Vec<u8>, usize) {
    let topo = Topology::new(4, 2).expect("topology");
    let refs = sample_refs(&topo);
    let mut bytes = Vec::new();
    if format == 2 {
        let trace = SharedTrace::from_refs(topo, Geometry::paper_default(), &refs);
        write_shared(&mut bytes, &trace).expect("encode v2");
    } else {
        write_trace(&mut bytes, &topo, &refs).expect("encode v1");
    }
    (bytes, refs.len())
}

/// Decodes `bytes` with both entry points inside `catch_unwind`,
/// panicking the test if either decoder itself panics. Returns the
/// decoded lengths (`None` = the decoder returned an error).
fn decode_both(bytes: &[u8], what: &str) -> (Option<usize>, Option<usize>) {
    let v1 = catch_unwind(AssertUnwindSafe(|| {
        read_trace(bytes).ok().map(|(_, refs)| refs.len())
    }))
    .unwrap_or_else(|_| panic!("read_trace panicked on {what}"));
    let v2 = catch_unwind(AssertUnwindSafe(|| {
        read_shared(bytes).ok().map(|t| t.len())
    }))
    .unwrap_or_else(|_| panic!("read_shared panicked on {what}"));
    (v1, v2)
}

#[test]
fn every_truncation_errors_or_roundtrips_exactly() {
    for format in [1u16, 2] {
        let (bytes, n_refs) = encoded(format);
        for cut in 0..bytes.len() {
            let what = format!("v{format} truncated to {cut}/{} bytes", bytes.len());
            let (v1, v2) = decode_both(&bytes[..cut], &what);
            // A strict prefix of a valid file can never carry the whole
            // trace: accepting it with any length is silent corruption.
            assert_eq!(v1, None, "read_trace accepted {what}");
            assert_eq!(v2, None, "read_shared accepted {what}");
        }
        // Sanity: the untruncated bytes decode to the full trace with
        // the matching decoder.
        let (v1, v2) = decode_both(&bytes, &format!("intact v{format} file"));
        let decoded = if format == 1 { v1 } else { v2 };
        assert_eq!(decoded, Some(n_refs), "v{format} roundtrip length");
    }
}

#[test]
fn appended_garbage_is_rejected() {
    for format in [1u16, 2] {
        let (mut bytes, _) = encoded(format);
        bytes.extend_from_slice(b"trailing debris");
        let (v1, v2) = decode_both(&bytes, &format!("v{format} with trailing bytes"));
        assert_eq!(v1, None, "read_trace accepted trailing bytes (v{format})");
        assert_eq!(v2, None, "read_shared accepted trailing bytes (v{format})");
    }
}

#[test]
fn random_bit_flips_never_panic_the_decoder() {
    let mut rng = TraceRng::for_workload("codec-bitflip", 11);
    for format in [1u16, 2] {
        let (bytes, _) = encoded(format);
        for _ in 0..400 {
            let mut corrupted = bytes.clone();
            // Flip 1-4 random bits anywhere in the file (header, count,
            // op bitmap, address words).
            let flips = 1 + rng.below(4) as usize;
            for _ in 0..flips {
                let at = rng.below(corrupted.len() as u64) as usize;
                corrupted[at] ^= 1 << rng.below(8);
            }
            let (v1, v2) = decode_both(&corrupted, "bit-flipped file");
            // If a decode still succeeds, its length must match what the
            // (possibly corrupted) header declared — i.e. the decoder
            // checked its framing and found the payload consistent, not
            // merely read until the data ran out.
            for len in [v1, v2].into_iter().flatten() {
                assert!(
                    len <= corrupted.len(),
                    "decoded {len} refs from a {}-byte file",
                    corrupted.len()
                );
            }
        }
    }
}
