//! Coherence correctness across clusters: hand-built reference sequences
//! with exact expectations on MESIR states, directory behaviour, and the
//! single-writer invariant.

use dsm_cache::CacheState;
use dsm_core::{System, SystemSpec};
use dsm_types::{Addr, ClusterId, Geometry, LocalProcId, MemRef, ProcId, Topology};

fn system(spec: SystemSpec) -> System {
    System::new(
        spec,
        Topology::paper_default(),
        Geometry::paper_default(),
        1024 * 1024,
    )
    .unwrap()
}

fn read(p: u16, a: u64) -> MemRef {
    MemRef::read(ProcId(p), Addr(a))
}

fn write(p: u16, a: u64) -> MemRef {
    MemRef::write(ProcId(p), Addr(a))
}

/// The machine-wide single-writer invariant over the processor caches:
/// if any cache holds a block `Modified` or `Exclusive`, no other cache
/// anywhere holds it valid.
fn assert_single_writer(sys: &System, blocks: &[u64]) {
    let topo = *sys.topology();
    for &b in blocks {
        let block = sys.geometry().block_of(Addr(b));
        let mut writable = 0;
        let mut valid = 0;
        for c in topo.cluster_ids() {
            let unit = sys.cluster(c);
            for lp in 0..topo.procs_per_cluster() {
                let s = unit.bus.cache(LocalProcId(lp)).state_of(block);
                if s.is_valid() {
                    valid += 1;
                }
                if s.allows_silent_write() {
                    writable += 1;
                }
            }
        }
        assert!(writable <= 1, "block {b:#x}: {writable} writable copies");
        if writable == 1 {
            assert_eq!(
                valid, 1,
                "block {b:#x}: writable copy coexists with sharers"
            );
        }
    }
}

#[test]
fn remote_read_fill_takes_r_state() {
    let mut sys = system(SystemSpec::vb());
    sys.process(read(0, 0x1000)); // homes page at cluster 0
    sys.process(read(4, 0x1000)); // cluster 1, remote clean fill
    let block = sys.geometry().block_of(Addr(0x1000));
    let c1 = sys.cluster(ClusterId(1));
    assert_eq!(
        c1.bus.cache(LocalProcId(0)).state_of(block),
        CacheState::RemoteMaster
    );
}

#[test]
fn local_exclusive_fill_takes_e_state() {
    let mut sys = system(SystemSpec::base());
    sys.process(read(0, 0x1000));
    let block = sys.geometry().block_of(Addr(0x1000));
    assert_eq!(
        sys.cluster(ClusterId(0))
            .bus
            .cache(LocalProcId(0))
            .state_of(block),
        CacheState::Exclusive
    );
    // Silent E -> M write: no new directory transaction.
    let before = *sys.metrics();
    sys.process(write(0, 0x1000));
    assert_eq!(sys.metrics().write_hits, before.write_hits + 1);
}

#[test]
fn peer_acquires_shared_master_keeps_r() {
    let mut sys = system(SystemSpec::vb());
    sys.process(read(0, 0x1000));
    sys.process(read(4, 0x1000)); // P4 gets R
    sys.process(read(5, 0x1000)); // P5 peer-supplied, gets S; P4 keeps R
    let block = sys.geometry().block_of(Addr(0x1000));
    let c1 = sys.cluster(ClusterId(1));
    assert_eq!(
        c1.bus.cache(LocalProcId(0)).state_of(block),
        CacheState::RemoteMaster
    );
    assert_eq!(
        c1.bus.cache(LocalProcId(1)).state_of(block),
        CacheState::Shared
    );
    assert_eq!(sys.metrics().peer_transfers, 1);
}

#[test]
fn write_invalidates_every_other_cluster() {
    let mut sys = system(SystemSpec::base());
    sys.process(read(0, 0x2000));
    sys.process(read(4, 0x2000));
    sys.process(read(8, 0x2000));
    sys.process(write(12, 0x2000)); // cluster 3 writes
    let block = sys.geometry().block_of(Addr(0x2000));
    for c in 0..3u16 {
        let unit = sys.cluster(ClusterId(c));
        assert!(!unit.bus.any_valid(block), "cluster {c} kept a stale copy");
    }
    assert_eq!(
        sys.cluster(ClusterId(3))
            .bus
            .cache(LocalProcId(0))
            .state_of(block),
        CacheState::Modified
    );
    assert_single_writer(&sys, &[0x2000]);
}

#[test]
fn ping_pong_writes_keep_single_writer() {
    let mut sys = system(SystemSpec::vb());
    let addr = 0x3000;
    sys.process(read(0, addr));
    for round in 0..6 {
        let writer = (round % 8) * 4; // one processor per cluster
        sys.process(write(writer, addr));
        assert_single_writer(&sys, &[addr]);
    }
    // Seven ownership transfers happened; each is one remote/local write
    // transaction and invalidations at the previous owner.
    assert!(sys.metrics().invalidations >= 5);
}

#[test]
fn dirty_remote_read_downgrades_owner() {
    let mut sys = system(SystemSpec::vb());
    sys.process(read(0, 0x4000)); // home cluster 0
    sys.process(write(4, 0x4000)); // cluster 1 owns dirty
    sys.process(read(8, 0x4000)); // cluster 2 reads: 3-hop downgrade
    let block = sys.geometry().block_of(Addr(0x4000));
    let owner_cache = sys.cluster(ClusterId(1)).bus.cache(LocalProcId(0));
    assert_eq!(owner_cache.state_of(block), CacheState::Shared);
    assert_single_writer(&sys, &[0x4000]);
    // A subsequent write by cluster 1 must be a fresh ownership request.
    let before = sys.metrics().remote_write_misses();
    sys.process(write(4, 0x4000));
    assert_eq!(sys.metrics().remote_write_misses(), before + 1);
}

#[test]
fn false_sharing_blocks_ping_pong_correctly() {
    // Two clusters write different words of the same block.
    let mut sys = system(SystemSpec::vb());
    sys.process(read(0, 0x5000));
    for i in 0..4 {
        sys.process(write(4, 0x5000 + 8)); // cluster 1, word 1
        sys.process(write(8, 0x5000 + 16)); // cluster 2, word 2
        let _ = i;
        assert_single_writer(&sys, &[0x5000]);
    }
    // Every write after the first pair is a coherence (necessary) write
    // transaction, not a capacity one.
    assert_eq!(sys.metrics().remote_write_capacity, 0);
}

#[test]
fn mesir_replacement_hands_mastership_to_sharer() {
    let mut sys = system(SystemSpec::vb());
    // Home everything at cluster 0; cluster 1's P4 takes R, P5 takes S.
    sys.process(read(0, 0x1000));
    sys.process(read(4, 0x1000));
    sys.process(read(5, 0x1000));
    // Conflict-evict P4's R copy (16 KB 2-way: 8-KB stride aliases).
    sys.process(read(0, 0x1000 + 8 * 1024));
    sys.process(read(0, 0x1000 + 16 * 1024));
    sys.process(read(4, 0x1000 + 8 * 1024));
    sys.process(read(4, 0x1000 + 16 * 1024));
    let block = sys.geometry().block_of(Addr(0x1000));
    let c1 = sys.cluster(ClusterId(1));
    assert_eq!(
        c1.bus.cache(LocalProcId(0)).state_of(block),
        CacheState::Invalid,
        "P4's copy should be evicted"
    );
    assert_eq!(
        c1.bus.cache(LocalProcId(1)).state_of(block),
        CacheState::RemoteMaster,
        "P5 should have assumed mastership (S -> R)"
    );
    // Mastership hand-off means the NC was not used for this block.
    assert!(!c1.nc.contains(block));
}

#[test]
fn capacity_miss_classification_via_presence_bits() {
    let mut sys = system(SystemSpec::base());
    sys.process(read(0, 0x6000));
    sys.process(read(4, 0x6000)); // necessary (cold)
                                  // Evict cluster 1's copy by conflict.
    sys.process(read(0, 0x6000 + 8 * 1024));
    sys.process(read(0, 0x6000 + 16 * 1024));
    sys.process(read(4, 0x6000 + 8 * 1024));
    sys.process(read(4, 0x6000 + 16 * 1024));
    sys.process(read(4, 0x6000)); // capacity (presence bit still set)
    let m = sys.metrics();
    assert_eq!(m.remote_read_necessary, 3); // 0x6000 + the two aliases
    assert_eq!(m.remote_read_capacity, 1);
    // Invalidation resets the classification to necessary.
    sys.process(write(8, 0x6000));
    sys.process(read(4, 0x6000));
    assert_eq!(sys.metrics().remote_read_necessary, 4);
    assert_eq!(sys.metrics().remote_read_capacity, 1);
}
