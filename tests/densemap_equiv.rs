//! Equivalence and determinism gates for the hot-path data structures.
//!
//! The hot-path overhaul swapped every per-reference table onto
//! [`dsm_types::DenseMap`] (open addressing over `u64` keys, FxHash).
//! These tests pin the map to `std::collections::HashMap` semantics under
//! randomized operation sequences — including tombstone churn and extreme
//! keys — and pin the simulator's end-to-end output with golden metrics,
//! so a future map change that alters simulation results fails loudly
//! rather than silently shifting figures.

use std::collections::HashMap;

use dsm_core::runner::run_trace;
use dsm_core::SystemSpec;
use dsm_trace::{Scale, SharedTrace, WorkloadKind};
use dsm_types::{DenseMap, Geometry, Topology};

/// Deterministic xorshift64* generator — no external crates, fixed seeds.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Replays one random operation sequence against both maps and checks
/// every observable result matches.
fn check_equiv(seed: u64, ops: usize, key_space: u64) {
    let mut rng = Rng(seed);
    let mut dense: DenseMap<u64> = DenseMap::new();
    let mut reference: HashMap<u64, u64> = HashMap::new();

    for i in 0..ops {
        let r = rng.next();
        // Mostly a small key space (forces collisions, overwrites and
        // tombstone reuse), with occasional extreme keys.
        let key = match r % 16 {
            0 => 0,
            1 => u64::MAX - (r >> 32) % 4,
            _ => (r >> 8) % key_space,
        };
        let val = i as u64;
        match (r >> 4) % 6 {
            0 | 1 => {
                assert_eq!(
                    dense.insert(key, val),
                    reference.insert(key, val),
                    "insert({key}) seed {seed} op {i}"
                );
            }
            2 => {
                assert_eq!(
                    dense.remove(key),
                    reference.remove(&key),
                    "remove({key}) seed {seed} op {i}"
                );
            }
            3 => {
                assert_eq!(
                    dense.get(key),
                    reference.get(&key),
                    "get({key}) seed {seed} op {i}"
                );
                assert_eq!(
                    dense.contains_key(key),
                    reference.contains_key(&key),
                    "contains({key}) seed {seed} op {i}"
                );
            }
            4 => {
                let d = dense.entry_or_default(key);
                let h = reference.entry(key).or_default();
                assert_eq!(d, h, "entry_or_default({key}) seed {seed} op {i}");
                *d += 1;
                *h += 1;
            }
            _ => {
                if let Some(d) = dense.get_mut(key) {
                    *d ^= r;
                }
                if let Some(h) = reference.get_mut(&key) {
                    *h ^= r;
                }
            }
        }
        assert_eq!(dense.len(), reference.len(), "len seed {seed} op {i}");
    }

    // Full-content comparison at the end, in both directions.
    let mut dense_pairs: Vec<(u64, u64)> = dense.iter().map(|(k, &v)| (k, v)).collect();
    let mut ref_pairs: Vec<(u64, u64)> = reference.iter().map(|(&k, &v)| (k, v)).collect();
    dense_pairs.sort_unstable();
    ref_pairs.sort_unstable();
    assert_eq!(dense_pairs, ref_pairs, "final contents, seed {seed}");
}

#[test]
fn densemap_matches_std_hashmap_small_keyspace() {
    // A small key space maximizes overwrite/remove/reinsert churn.
    for seed in [1, 0xDEAD_BEEF, 0x1234_5678_9ABC_DEF0] {
        check_equiv(seed, 4000, 17);
    }
}

#[test]
fn densemap_matches_std_hashmap_wide_keyspace() {
    // A wide key space exercises growth and long probe distances.
    for seed in [7, 0xCAFE_F00D, 0x0F0F_0F0F_0F0F_0F0F] {
        check_equiv(seed, 4000, 1 << 40);
    }
}

#[test]
fn densemap_tombstone_reuse_keeps_lookups_correct() {
    // Insert/remove waves over the same keys: every lookup must keep
    // probing past tombstones rather than stopping early.
    let mut m: DenseMap<u32> = DenseMap::new();
    for wave in 0u32..8 {
        for k in 0u64..64 {
            m.insert(k, wave);
        }
        for k in (0u64..64).step_by(2) {
            assert_eq!(m.remove(k), Some(wave), "wave {wave} key {k}");
        }
        for k in 0u64..64 {
            let expect = if k % 2 == 0 { None } else { Some(&wave) };
            assert_eq!(m.get(k), expect, "wave {wave} key {k}");
        }
        assert_eq!(m.len(), 32);
    }
}

/// Golden end-to-end run: the dev FFT trace on the base CC-NUMA machine
/// must keep producing these exact counters. The values were captured
/// from the pre-overhaul simulator (verified byte-identical through the
/// refactor), so this test is the in-tree guard for the reproduce
/// pipeline's output identity.
#[test]
fn golden_fft_base_metrics_are_stable() {
    let w = WorkloadKind::Fft.dev_instance();
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    let refs = w.generate(&topo, Scale::new(0.25).unwrap());
    let trace = SharedTrace::from_refs(topo, geo, &refs);
    let r = run_trace(&SystemSpec::base(), w.name(), w.shared_bytes(), &trace).unwrap();

    // Two replays of the same trace must agree exactly (determinism).
    let r2 = run_trace(&SystemSpec::base(), w.name(), w.shared_bytes(), &trace).unwrap();
    assert_eq!(
        r.metrics, r2.metrics,
        "same trace, same system, same metrics"
    );

    assert_eq!(r.refs, 13056);
    assert_eq!(r.metrics.reads, 7168);
    assert_eq!(r.metrics.writes, 5888);
    assert_eq!(r.metrics.read_hits, 5952);
    assert_eq!(r.metrics.write_hits, 4020);
    assert_eq!(r.metrics.remote_read_necessary, 624);
    assert_eq!(r.metrics.remote_read_capacity, 56);
    assert_eq!(r.metrics.peer_transfers, 624);
    assert_eq!(r.metrics.local_upgrades, 0);
    assert_eq!(r.metrics.invalidations, 192);
}
