//! Randomized coherence fuzzing: replay pseudo-random reference streams
//! under every protocol configuration with the invariant checker at its
//! tightest cadence (`K = 1`, an audit after every reference), plus
//! directed tests proving the checker catches deliberately injected
//! directory corruption and that a checked run is observationally
//! identical to an unchecked one.
//!
//! Like `properties.rs`, the streams are driven by the workspace's own
//! deterministic [`TraceRng`], so every failure is reproducible from the
//! printed configuration name and seed.

use dsm_core::shard::{ShardEngine, ShardTuning};
use dsm_core::{PcSize, System, SystemSpec};
use dsm_trace::rng::TraceRng;
use dsm_trace::SharedTrace;
use dsm_types::{Addr, ClusterId, ErrorKind, Geometry, MemRef, ProcId, Topology};

/// Small machine: enough clusters for real inter-cluster traffic,
/// small enough that a per-reference audit stays fast.
fn topo() -> Topology {
    Topology::new(4, 2).expect("constants are valid")
}

/// A conflict-heavy random trace: half the references land in a 2-page
/// hot region (forcing evictions, victim captures, and ownership
/// migration), the rest spread over 16 pages so page-level machinery
/// (page caches, relocation, migration) also engages.
fn random_trace(seed: u64, refs: usize) -> SharedTrace {
    let topo = topo();
    let geo = Geometry::paper_default();
    let page = geo.page_bytes();
    let mut rng = TraceRng::for_workload("invariant-fuzz", seed);
    let mut out = Vec::with_capacity(refs);
    for _ in 0..refs {
        let proc = ProcId(rng.below(u64::from(topo.total_procs())) as u16);
        let addr = if rng.chance(0.5) {
            Addr(rng.below(2 * page) & !3)
        } else {
            Addr(rng.below(16 * page) & !3)
        };
        let r = if rng.chance(0.35) {
            MemRef::write(proc, addr)
        } else {
            MemRef::read(proc, addr)
        };
        out.push(r);
    }
    SharedTrace::from_refs(topo, geo, &out)
}

/// The full protocol matrix of the paper's design space, with caches
/// shrunk so the random streams overflow them constantly.
fn config_matrix() -> Vec<SystemSpec> {
    vec![
        SystemSpec::base().with_cache(2048, 2),
        SystemSpec::base()
            .with_cache(2048, 2)
            .with_limited_directory(2),
        SystemSpec::vb().with_cache(2048, 2),
        SystemSpec::vpp(PcSize::Bytes(8192)).with_cache(2048, 2),
        SystemSpec::vxp(PcSize::Bytes(8192), 4).with_cache(2048, 2),
        SystemSpec::origin().with_cache(2048, 2),
    ]
}

#[test]
fn fuzz_matrix_holds_invariants_at_k1() {
    let data_bytes = 16 * Geometry::paper_default().page_bytes();
    for seed in [1u64, 2, 3] {
        let trace = random_trace(seed, 4000);
        for spec in config_matrix() {
            let name = spec.name.clone();
            let mut sys = System::new(spec, topo(), Geometry::paper_default(), data_bytes)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            sys.set_check_level(1);
            sys.run_shared_checked(&trace)
                .unwrap_or_else(|e| panic!("config {name}, seed {seed}: {e}"));
        }
    }
}

/// The fuzz streams are single-component by construction (every cluster
/// shares the same hot pages), so a sharded replay runs through the
/// intra-component *rounds* engine. Its merged state must satisfy every
/// invariant and equal the state of an oracle that audited itself after
/// every reference (K = 1) — the supervised parallel path gets the same
/// correctness bar as the serial one.
#[test]
fn rounds_engine_matches_k1_oracle_on_fuzz_traces() {
    let data_bytes = 16 * Geometry::paper_default().page_bytes();
    // Origin's migratory home policy refuses to shard (see
    // `migratory_specs_fall_back_to_the_oracle` in sharded_equiv), so
    // the matrix here is the non-migratory protocol families.
    let specs: Vec<SystemSpec> = config_matrix()
        .into_iter()
        .filter(|s| s.name != SystemSpec::origin().name)
        .collect();
    // Tiny chunks and single-ref rounds so a 4000-reference stream still
    // produces real parallel rounds despite the deliberate conflicts.
    let tuning = ShardTuning {
        chunk_refs: 64,
        mailbox_capacity: 4,
        min_parallel_refs: 1,
        ..ShardTuning::default()
    };
    for seed in [11u64, 12] {
        let trace = random_trace(seed, 4000);
        for spec in &specs {
            let name = spec.name.clone();
            let mut checked =
                System::new(spec.clone(), topo(), Geometry::paper_default(), data_bytes)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
            checked.set_check_level(1);
            checked
                .run_shared_checked(&trace)
                .unwrap_or_else(|e| panic!("config {name}, seed {seed}: {e}"));

            let mut sys = System::new(spec.clone(), topo(), Geometry::paper_default(), data_bytes)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            sys.run_sharded_with(&trace, 2, tuning);
            let report = sys
                .shard_report()
                .unwrap_or_else(|| panic!("config {name}, seed {seed}: no shard report"));
            assert_eq!(
                report.engine,
                ShardEngine::Rounds,
                "config {name}, seed {seed}: single-component fuzz trace must use the rounds engine"
            );
            assert_eq!(
                report.degraded, None,
                "config {name}, seed {seed}: clean run must not degrade"
            );
            sys.check_invariants().unwrap_or_else(|e| {
                panic!("config {name}, seed {seed}: sharded state violates invariants: {e}")
            });
            assert_eq!(
                checked.metrics(),
                sys.metrics(),
                "config {name}, seed {seed}: rounds engine diverged from the K=1 oracle"
            );
            for c in 0..topo().clusters() {
                assert_eq!(
                    checked.cluster_counts(ClusterId(c)),
                    sys.cluster_counts(ClusterId(c)),
                    "config {name}, seed {seed}: cluster {c} counters diverged"
                );
            }
        }
    }
}

#[test]
fn checked_run_is_observationally_identical() {
    let data_bytes = 16 * Geometry::paper_default().page_bytes();
    let trace = random_trace(7, 4000);
    for spec in config_matrix() {
        let name = spec.name.clone();
        let mut plain = System::new(spec.clone(), topo(), Geometry::paper_default(), data_bytes)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut checked = System::new(spec, topo(), Geometry::paper_default(), data_bytes)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        plain.run_shared(&trace);
        checked.set_check_level(1);
        checked
            .run_shared_checked(&trace)
            .unwrap_or_else(|e| panic!("config {name}: {e}"));
        assert_eq!(
            plain.metrics(),
            checked.metrics(),
            "config {name}: the checker perturbed the simulation"
        );
    }
}

#[test]
fn injected_directory_corruption_is_caught() {
    let geo = Geometry::paper_default();
    let mut sys = System::new(SystemSpec::base(), topo(), geo, 0).expect("valid spec");
    // Processor 2 lives in cluster 1 (2 procs per cluster): its read
    // registers cluster 1 in the block's directory sharer set.
    let addr = Addr(0x40);
    sys.process(MemRef::read(ProcId(2), addr));
    sys.check_invariants().expect("clean state must pass");

    let block = geo.decompose(addr).block;
    sys.corrupt_directory_drop_presence(block, ClusterId(1));
    let err = sys
        .check_invariants()
        .expect_err("a cached copy without a presence bit must be caught");
    assert_eq!(err.kind(), ErrorKind::InvariantViolation);
    let text = err.to_string();
    assert!(
        text.contains("sharer set") && text.contains("C1"),
        "violation should name the invariant and cluster: {text}"
    );
}

#[test]
fn checked_run_attaches_reference_context() {
    let geo = Geometry::paper_default();
    let mut sys = System::new(SystemSpec::base(), topo(), geo, 0).expect("valid spec");
    sys.process(MemRef::read(ProcId(2), Addr(0x40)));
    sys.corrupt_directory_drop_presence(geo.decompose(Addr(0x40)).block, ClusterId(1));

    // Replaying an unrelated reference leaves the corruption in place;
    // the post-reference audit must fail and say which reference the
    // machine was on when the corruption surfaced.
    sys.set_check_level(1);
    let trace = SharedTrace::from_refs(topo(), geo, &[MemRef::read(ProcId(0), Addr(0x9000))]);
    let err = sys
        .run_shared_checked(&trace)
        .expect_err("corrupted state must fail the in-trace audit");
    assert_eq!(err.kind(), ErrorKind::InvariantViolation);
    let text = err.to_string();
    assert!(
        text.contains("after ref 0") && text.contains("read") && text.contains("0x9000"),
        "violation should carry the reference context: {text}"
    );
}

#[test]
fn checked_run_rejects_mismatched_trace() {
    let geo = Geometry::paper_default();
    let trace = random_trace(1, 10);
    let other = Topology::new(2, 2).expect("valid");
    let mut sys = System::new(SystemSpec::base(), other, geo, 0).expect("valid spec");
    let err = sys
        .run_shared_checked(&trace)
        .expect_err("topology mismatch must be rejected");
    assert_eq!(err.kind(), ErrorKind::BadInput);
}
