//! Integration tests for the observability layer: the probe must not
//! perturb the simulation, epoch samples must partition the run exactly,
//! event streams must agree with the aggregate counters, and the figures
//! of merit must match hand-computed values (Equation 1, the x225/30
//! relocation overhead, Figure 10's traffic definition).

use dsm_core::obs::{JsonlSink, StatsSink};
use dsm_core::runner::{run_trace, run_trace_probed};
use dsm_core::{Latencies, LatencyModel, Metrics, NcTechnology, PcSize, System, SystemSpec, Tee};
use dsm_trace::{workloads::Lu, Scale, SharedTrace, Workload};
use dsm_types::{ClusterId, Geometry, Topology};

fn lu_trace() -> (Topology, Geometry, u64, SharedTrace) {
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    let w = Lu::with_matrix(128); // small instance: ~fast, still remote-heavy
    let refs = w.generate(&topo, Scale::full());
    let trace = SharedTrace::from_refs(topo, geo, &refs);
    (topo, geo, w.shared_bytes(), trace)
}

fn vxp_spec() -> SystemSpec {
    SystemSpec::vxp(PcSize::DataFraction(5), 32)
}

#[test]
fn epoch_samples_partition_the_run_exactly() {
    let (topo, geo, data_bytes, trace) = lu_trace();
    let mut system =
        System::with_probe(vxp_spec(), topo, geo, data_bytes, StatsSink::new()).unwrap();
    system.set_epoch_window(10_000);
    system.run_shared(&trace);
    system.finish();

    let sink = system.probe();
    let epochs = sink.epochs();
    assert!(epochs.len() >= 2, "trace too short for the epoch window");

    // Epoch boundaries are contiguous and cover every reference.
    let mut expected_start = 0;
    for (i, s) in epochs.iter().enumerate() {
        assert_eq!(s.index, i as u64);
        assert_eq!(s.start_ref, expected_start);
        assert!(s.end_ref > s.start_ref);
        expected_start = s.end_ref;
    }
    assert_eq!(expected_start, system.metrics().shared_refs);

    // The sum of the per-epoch deltas is the whole run.
    assert_eq!(&sink.epoch_total(), system.metrics());

    // And the per-cluster series sums to the per-cluster aggregates.
    let totals = sink.epoch_cluster_totals();
    assert_eq!(totals.len(), usize::from(topo.clusters()));
    for (i, total) in totals.iter().enumerate() {
        assert_eq!(total, system.cluster_counts(ClusterId(i as u16)));
    }
    let refs: u64 = totals.iter().map(|c| c.refs).sum();
    assert_eq!(refs, system.metrics().shared_refs);
}

#[test]
fn probe_does_not_perturb_any_system() {
    let (_topo, _geo, data_bytes, trace) = lu_trace();
    for spec in [SystemSpec::base(), SystemSpec::vb(), vxp_spec()] {
        let plain = run_trace(&spec, "lu", data_bytes, &trace).unwrap();
        let (probed, _) = run_trace_probed(
            &spec,
            "lu",
            data_bytes,
            &trace,
            StatsSink::new(),
            Some(25_000),
        )
        .unwrap();
        assert_eq!(plain, probed, "probe changed {}'s result", spec.name);
    }
}

#[test]
fn event_stream_agrees_with_aggregate_metrics() {
    let (topo, _geo, data_bytes, trace) = lu_trace();
    let (report, sink) = run_trace_probed(
        &vxp_spec(),
        "lu",
        data_bytes,
        &trace,
        StatsSink::new(),
        None,
    )
    .unwrap();
    let m = &report.metrics;
    assert_eq!(sink.count("cache_hit"), m.read_hits + m.write_hits);
    assert_eq!(sink.count("peer_transfer"), m.peer_transfers);
    assert_eq!(sink.count("nc_hit"), m.nc_read_hits + m.nc_write_hits);
    assert_eq!(sink.count("pc_hit"), m.pc_read_hits + m.pc_write_hits);
    assert_eq!(
        sink.count("remote_read"),
        m.remote_read_necessary + m.remote_read_capacity
    );
    assert_eq!(
        sink.count("remote_write"),
        m.remote_write_necessary + m.remote_write_capacity
    );
    assert_eq!(sink.count("ownership_request"), m.remote_ownership_requests);
    assert_eq!(sink.count("relocation"), m.relocations);
    assert_eq!(sink.count("nc_capture"), m.nc_captures);
    assert_eq!(sink.count("local_upgrade"), m.local_upgrades);
    assert_eq!(sink.count("migration"), m.migrations);
    assert_eq!(sink.count("replication"), m.replications);

    // Per-cluster event attribution covers every cluster that issued refs.
    let per_cluster = sink.per_cluster_events();
    assert!(per_cluster.iter().any(|&n| n > 0));
    assert!(per_cluster.len() <= usize::from(topo.clusters()));
}

#[test]
fn jsonl_sink_streams_the_whole_run() {
    let (_topo, _geo, data_bytes, trace) = lu_trace();
    let probe = Tee(StatsSink::new(), JsonlSink::new(Vec::new()));
    let (_, Tee(stats, jsonl)) =
        run_trace_probed(&vxp_spec(), "lu", data_bytes, &trace, probe, Some(50_000)).unwrap();
    let lines_written = jsonl.lines();
    let buf = jsonl.finish().unwrap();
    let text = String::from_utf8(buf).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len() as u64, lines_written);
    assert_eq!(
        lines.len() as u64,
        stats.events_seen() + stats.epochs().len() as u64
    );
    // Every line is a single JSON object.
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad line {line}"
        );
    }
    // Epoch records are tagged and interleaved after their events.
    assert!(text.contains(r#""ev":"epoch""#));
}

/// Hand-computed counter set used by the golden figure-of-merit tests.
fn golden_metrics() -> Metrics {
    let mut m = Metrics::new();
    m.shared_refs = 1000;
    m.nc_read_hits = 7;
    m.pc_read_hits = 5;
    m.remote_read_necessary = 11;
    m.remote_read_capacity = 4; // 15 remote read misses in total
    m.remote_write_necessary = 3;
    m.remote_ownership_requests = 2; // 5 remote write transactions in total
    m.remote_writebacks = 6;
    m.relocations = 2;
    m
}

#[test]
#[allow(clippy::identity_op)] // keep the 1-cycle SRAM term visible
fn golden_equation_1_remote_read_stall() {
    let m = golden_metrics();
    // SRAM NC (Table 1): NC hit 1, PC hit 10, remote miss 30, reloc 225.
    let sram = LatencyModel::new(Latencies::paper_default(), NcTechnology::Sram);
    assert_eq!(
        m.remote_read_stall(&sram),
        7 * 1 + 5 * 10 + 15 * 30 + 2 * 225 // = 957
    );
    // DRAM NC: hits cost 10+3, and the tag check penalizes misses too.
    let dram = LatencyModel::new(Latencies::paper_default(), NcTechnology::Dram);
    assert_eq!(
        m.remote_read_stall(&dram),
        7 * 13 + 5 * 10 + 15 * 33 + 2 * 225 // = 1086
    );
}

#[test]
fn golden_os_page_ops_enter_equation_1() {
    let mut m = golden_metrics();
    m.migrations = 1;
    m.replications = 2; // os_page_ops = 2 + 1 + 2 = 5
    let sram = LatencyModel::new(Latencies::paper_default(), NcTechnology::Sram);
    assert_eq!(m.remote_read_stall(&sram), 7 + 50 + 450 + 5 * 225);
}

#[test]
fn golden_relocation_overhead_is_225_over_30() {
    let m = golden_metrics();
    let model = LatencyModel::new(Latencies::paper_default(), NcTechnology::Sram);
    // 2 relocations / 1000 refs, scaled by 225/30 = 7.5.
    let expected = (2.0 / 1000.0) * 7.5;
    assert!((m.relocation_overhead_ratio(&model) - expected).abs() < 1e-15);
    assert!((m.relocation_overhead_ratio(&model) - 0.015).abs() < 1e-15);
}

#[test]
fn golden_remote_traffic_counts_block_transfers() {
    let m = golden_metrics();
    // Figure 10: read misses + write transactions + write-backs.
    assert_eq!(m.remote_traffic(), 15 + 5 + 6);
    assert_eq!(m.read_miss_ratio(), 15.0 / 1000.0);
    assert_eq!(m.write_miss_ratio(), 5.0 / 1000.0);
}

#[test]
fn report_figures_of_merit_match_metrics_methods() {
    let (_topo, _geo, data_bytes, trace) = lu_trace();
    let spec = vxp_spec();
    let report = run_trace(&spec, "lu", data_bytes, &trace).unwrap();
    let model = LatencyModel::new(Latencies::paper_default(), spec.technology());
    let m = &report.metrics;
    assert_eq!(report.remote_read_stall, m.remote_read_stall(&model));
    assert_eq!(report.remote_traffic, m.remote_traffic());
    assert!((report.relocation_overhead - m.relocation_overhead_ratio(&model)).abs() < 1e-15);
    assert!((report.read_miss_ratio - m.read_miss_ratio()).abs() < 1e-15);
}
