//! Page-cache lifecycle across the full system: relocation triggering,
//! service after relocation, eviction/re-mapping effects, thrashing
//! adaptation, and the vxp counter path.

use dsm_core::{
    CacheSpec, CounterSource, NcSpec, PcSize, PcSpec, System, SystemSpec, ThresholdPolicy,
};
use dsm_types::{Addr, ClusterId, Geometry, MemRef, ProcId, Topology};

fn system(spec: SystemSpec) -> System {
    System::new(
        spec,
        Topology::paper_default(),
        Geometry::paper_default(),
        4 * 1024 * 1024,
    )
    .unwrap()
}

fn pc_only(frames_bytes: u64, threshold: ThresholdPolicy) -> SystemSpec {
    SystemSpec {
        name: "pc-only".into(),
        cache: CacheSpec::default(),
        nc: NcSpec::None,
        pc: Some(PcSpec {
            size: PcSize::Bytes(frames_bytes),
            counters: CounterSource::Directory,
            threshold,
            decrement_on_invalidation: false,
        }),
        dirty_shared: false,
        migrep: None,
        directory: dsm_core::DirectorySpec::FullMap,
    }
}

fn read(p: u16, a: u64) -> MemRef {
    MemRef::read(ProcId(p), Addr(a))
}

fn write(p: u16, a: u64) -> MemRef {
    MemRef::write(ProcId(p), Addr(a))
}

/// Drives `rounds` of conflict misses by cluster 1 on `addr` (homed at
/// cluster 0), using the 8-KB aliases of a 16-KB 2-way cache.
fn thrash_block(sys: &mut System, addr: u64, rounds: usize) {
    sys.process(read(0, addr)); // first touch at cluster 0
    for _ in 0..rounds {
        sys.process(read(4, addr));
        sys.process(read(4, addr + 8 * 1024));
        sys.process(read(4, addr + 16 * 1024));
    }
}

#[test]
fn relocation_triggers_and_serves() {
    let mut sys = system(pc_only(256 * 1024, ThresholdPolicy::Fixed(3)));
    thrash_block(&mut sys, 0x1000, 10);
    let m = sys.metrics();
    assert_eq!(m.relocations, 1, "{m:?}");
    assert!(m.pc_read_hits >= 5, "{m:?}");
    // Page 1 is resident in cluster 1's PC.
    let page = sys.geometry().page_of(Addr(0x1000));
    assert!(sys
        .cluster(ClusterId(1))
        .pc
        .as_ref()
        .unwrap()
        .has_page(page));
}

#[test]
fn relocated_page_keeps_being_coherent() {
    let mut sys = system(pc_only(256 * 1024, ThresholdPolicy::Fixed(3)));
    thrash_block(&mut sys, 0x1000, 8);
    assert!(sys.metrics().pc_read_hits > 0);
    // Another cluster writes the block: the PC copy must be invalidated.
    sys.process(write(8, 0x1000));
    let before = sys.metrics().pc_read_hits;
    let necessary_before = sys.metrics().remote_read_necessary;
    sys.process(read(4, 0x1000));
    // Not a PC hit (block invalid in page), but a remote coherence miss.
    assert_eq!(sys.metrics().pc_read_hits, before);
    assert_eq!(sys.metrics().remote_read_necessary, necessary_before + 1);
    // The refill revalidates the PC block: the next conflict round hits.
    sys.process(read(4, 0x1000 + 8 * 1024));
    sys.process(read(4, 0x1000 + 16 * 1024));
    sys.process(read(4, 0x1000));
    assert_eq!(sys.metrics().pc_read_hits, before + 1);
}

#[test]
fn pc_eviction_forces_remapping_evictions() {
    // A one-frame page cache: relocating a second page evicts the first
    // and must flush the cluster's copies of the first page's blocks.
    let mut sys = system(pc_only(4096, ThresholdPolicy::Fixed(2)));
    thrash_block(&mut sys, 0x1000, 4); // page 1 relocated
    assert_eq!(sys.metrics().relocations, 1);
    thrash_block(&mut sys, 0x40_000, 4); // page 0x40 relocated, evicts page 1
    assert_eq!(sys.metrics().relocations, 2);
    let pc = sys.cluster(ClusterId(1)).pc.as_ref().unwrap();
    assert!(!pc.has_page(sys.geometry().page_of(Addr(0x1000))));
    assert!(pc.has_page(sys.geometry().page_of(Addr(0x40_000))));
}

#[test]
fn dirty_pc_blocks_write_back_on_eviction() {
    let mut sys = system(pc_only(4096, ThresholdPolicy::Fixed(2)));
    thrash_block(&mut sys, 0x1000, 4);
    // Dirty the relocated page via a write, then park the M block back
    // into the PC by conflict-evicting it.
    sys.process(write(4, 0x1000));
    sys.process(write(4, 0x1000 + 8 * 1024));
    sys.process(write(4, 0x1000 + 16 * 1024));
    let wb_before = sys.metrics().remote_writebacks;
    // Relocate a different page into the single frame.
    thrash_block(&mut sys, 0x40_000, 4);
    assert!(
        sys.metrics().remote_writebacks > wb_before,
        "dirty blocks of the evicted page must cross the network: {:?}",
        sys.metrics()
    );
}

#[test]
fn adaptive_threshold_rises_under_thrashing() {
    // One-frame PC, two pages fighting for it.
    let mut sys = system(pc_only(4096, ThresholdPolicy::Adaptive { initial: 2 }));
    for round in 0..40 {
        let addr = if round % 2 == 0 { 0x1000 } else { 0x40_000 };
        thrash_block(&mut sys, addr, 3);
    }
    let t = &sys.cluster(ClusterId(1)).threshold;
    assert!(
        t.adjustments() > 0,
        "threshold never adapted: {} relocations",
        sys.metrics().relocations
    );
    assert!(t.threshold() > 2);
}

#[test]
fn vxp_counters_drive_relocation_without_directory() {
    let spec = SystemSpec::vxp(PcSize::Bytes(256 * 1024), 4);
    let mut sys = system(spec);
    // Build victimization pressure on one page at cluster 1: with page
    // indexing, all blocks of page 1 land in one NC set.
    sys.process(read(0, 0x1000));
    for round in 0..30u64 {
        let a = 0x1000 + (round % 4) * 64;
        sys.process(read(4, a));
        sys.process(read(4, a + 8 * 1024));
        sys.process(read(4, a + 16 * 1024));
    }
    let m = sys.metrics();
    assert!(m.nc_captures > 0, "{m:?}");
    assert!(m.relocations >= 1, "vxp counters never relocated: {m:?}");
    let page = sys.geometry().page_of(Addr(0x1000));
    assert!(sys
        .cluster(ClusterId(1))
        .pc
        .as_ref()
        .unwrap()
        .has_page(page));
}

#[test]
fn relocation_counter_resets_on_pc_eviction() {
    // After a page is evicted, it must re-earn its threshold before being
    // relocated again (no immediate flip-flop).
    let mut sys = system(pc_only(4096, ThresholdPolicy::Fixed(4)));
    thrash_block(&mut sys, 0x1000, 6);
    thrash_block(&mut sys, 0x40_000, 6);
    assert_eq!(sys.metrics().relocations, 2);
    // Two more conflict rounds on page 1: 2 capacity misses < threshold 4.
    sys.process(read(4, 0x1000));
    sys.process(read(4, 0x1000 + 8 * 1024));
    sys.process(read(4, 0x1000 + 16 * 1024));
    sys.process(read(4, 0x1000));
    assert_eq!(
        sys.metrics().relocations,
        2,
        "page flip-flopped back in below threshold"
    );
}
