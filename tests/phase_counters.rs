//! Phase-counter identity tests: replaying randomized traces under the
//! [`PhaseProfiler`] must reconcile *exactly* with the final [`Metrics`]
//! aggregates — the six primary phases partition the shared references,
//! each phase's event count equals the sum of its metric counters, the
//! estimated cycles are the metric counts times the Table 1/2 latencies,
//! and the per-cluster occupancy rows sum to the machine-wide counts.
//!
//! Like `invariant_fuzz.rs`, the streams come from the workspace's own
//! deterministic [`TraceRng`] so any failure reproduces from the printed
//! configuration name and seed, and the matrix spans the design space:
//! `base`, limited-pointer directory, `vb`, `vpp`, `vxp`, and `origin`
//! (the one family that exercises migration/replication relocations).

use dsm_core::{
    Event, Latencies, LatencyModel, Metrics, PcSize, Phase, PhaseCounters, PhaseProfiler, Probe,
    System, SystemSpec, Tee, PHASES,
};
use dsm_trace::rng::TraceRng;
use dsm_trace::SharedTrace;
use dsm_types::{Addr, Geometry, MemRef, ProcId, Topology};

fn topo() -> Topology {
    Topology::new(4, 2).expect("constants are valid")
}

/// A conflict-heavy random trace (same shape as `invariant_fuzz.rs`):
/// half the references in a 2-page hot region to force evictions and
/// victim traffic, the rest over 16 pages to engage page-level machinery.
fn random_trace(seed: u64, refs: usize) -> SharedTrace {
    let topo = topo();
    let geo = Geometry::paper_default();
    let page = geo.page_bytes();
    let mut rng = TraceRng::for_workload("phase-counters", seed);
    let mut out = Vec::with_capacity(refs);
    for _ in 0..refs {
        let proc = ProcId(rng.below(u64::from(topo.total_procs())) as u16);
        let addr = if rng.chance(0.5) {
            Addr(rng.below(2 * page) & !3)
        } else {
            Addr(rng.below(16 * page) & !3)
        };
        let r = if rng.chance(0.35) {
            MemRef::write(proc, addr)
        } else {
            MemRef::read(proc, addr)
        };
        out.push(r);
    }
    SharedTrace::from_refs(topo, geo, &out)
}

fn config_matrix() -> Vec<SystemSpec> {
    vec![
        SystemSpec::base().with_cache(2048, 2),
        SystemSpec::base()
            .with_cache(2048, 2)
            .with_limited_directory(2),
        SystemSpec::vb().with_cache(2048, 2),
        SystemSpec::vpp(PcSize::Bytes(8192)).with_cache(2048, 2),
        SystemSpec::vxp(PcSize::Bytes(8192), 4).with_cache(2048, 2),
        SystemSpec::origin().with_cache(2048, 2),
    ]
}

/// A by-kind event tally for the cross-checks where the metrics counter
/// is *not* 1:1 with events (invalidations count destroyed copies,
/// forced evictions count evicted blocks).
#[derive(Debug, Default, Clone)]
struct KindTally {
    ownership_requests: u64,
    invalidation_events: u64,
    invalidated_copies: u64,
    forced_eviction_events: u64,
    nc_captures: u64,
    absorbed_downgrades: u64,
    remote_writebacks: u64,
    relocation_like: u64,
    zero_cost_page_ops: u64,
}

impl Probe for KindTally {
    fn event(&mut self, _at: u64, event: &Event) {
        match event {
            Event::OwnershipRequest { .. } => self.ownership_requests += 1,
            Event::Invalidation { copies, .. } => {
                self.invalidation_events += 1;
                self.invalidated_copies += u64::from(*copies);
            }
            Event::ForcedEviction { .. } => self.forced_eviction_events += 1,
            Event::NcCapture { .. } => self.nc_captures += 1,
            Event::AbsorbedDowngrade { .. } => self.absorbed_downgrades += 1,
            Event::RemoteWriteback { .. } => self.remote_writebacks += 1,
            Event::Relocation { .. } | Event::Migration { .. } | Event::Replication { .. } => {
                self.relocation_like += 1;
            }
            Event::PageEviction { .. }
            | Event::ThresholdAdapted { .. }
            | Event::ReplicaCollapse { .. } => self.zero_cost_page_ops += 1,
            _ => {}
        }
    }
}

/// Runs `spec` over `trace` under `Tee(PhaseProfiler, KindTally)`,
/// returning the counters, tally and final metrics.
fn profiled_run(spec: &SystemSpec, trace: &SharedTrace) -> (PhaseCounters, KindTally, Metrics) {
    let data_bytes = 16 * Geometry::paper_default().page_bytes();
    let name = spec.name.clone();
    let probe = Tee(PhaseProfiler::for_spec(spec), KindTally::default());
    let mut sys = System::with_probe(
        spec.clone(),
        topo(),
        Geometry::paper_default(),
        data_bytes,
        probe,
    )
    .unwrap_or_else(|e| panic!("{name}: {e}"));
    sys.run_shared(trace);
    sys.finish();
    let (Tee(profiler, tally), metrics) = sys.into_probe();
    (profiler.into_counters(), tally, metrics)
}

#[test]
fn primary_phases_partition_shared_refs() {
    for seed in [1u64, 2, 3] {
        let trace = random_trace(seed, 4000);
        for spec in config_matrix() {
            let name = spec.name.clone();
            let (c, _, m) = profiled_run(&spec, &trace);
            let ctx = format!("config {name}, seed {seed}");
            assert_eq!(m.primary_services(), m.shared_refs, "{ctx}");
            assert_eq!(c.primary_events(), m.shared_refs, "{ctx}");
            assert_eq!(
                c.count(Phase::CacheHit),
                m.read_hits + m.write_hits + m.local_upgrades,
                "{ctx}"
            );
            assert_eq!(c.count(Phase::BusTransfer), m.peer_transfers, "{ctx}");
            assert_eq!(
                c.count(Phase::NcLookup),
                m.nc_read_hits + m.nc_write_hits,
                "{ctx}"
            );
            assert_eq!(
                c.count(Phase::PageCachePath),
                m.pc_read_hits + m.pc_write_hits,
                "{ctx}"
            );
            assert_eq!(c.count(Phase::LocalFill), m.local_misses, "{ctx}");
            assert_eq!(
                c.count(Phase::RemoteFill),
                m.remote_read_necessary
                    + m.remote_read_capacity
                    + m.remote_write_necessary
                    + m.remote_write_capacity,
                "{ctx}"
            );
        }
    }
}

#[test]
fn secondary_phases_reconcile_with_event_tallies() {
    let trace = random_trace(4, 4000);
    for spec in config_matrix() {
        let name = spec.name.clone();
        let (c, t, m) = profiled_run(&spec, &trace);
        let ctx = format!("config {name}");
        // Directory-only transactions: ownership requests are 1:1 with
        // the metrics counter; invalidation events bundle their victim
        // copies. The event's `copies` field carries only processor-cache
        // copies, while `metrics.invalidations` additionally counts NC
        // and PC copy invalidations (+1 each), so the event tally is a
        // lower bound that coincides exactly on NC/PC-less configs.
        assert_eq!(t.ownership_requests, m.remote_ownership_requests, "{ctx}");
        assert!(t.invalidated_copies <= m.invalidations, "{ctx}");
        if matches!(spec.nc, dsm_core::NcSpec::None) && spec.pc.is_none() {
            assert_eq!(t.invalidated_copies, m.invalidations, "{ctx}");
        }
        assert_eq!(
            c.count(Phase::DirectoryProbe),
            t.ownership_requests + t.invalidation_events,
            "{ctx}"
        );
        // Victim traffic: captures, downgrades and write-backs are 1:1;
        // forced-eviction events count evictions (the metrics counter
        // counts evicted blocks, which can exceed it).
        assert_eq!(t.nc_captures, m.nc_captures, "{ctx}");
        assert_eq!(t.absorbed_downgrades, m.absorbed_downgrades, "{ctx}");
        assert_eq!(t.remote_writebacks, m.remote_writebacks, "{ctx}");
        assert_eq!(
            c.count(Phase::VictimPath),
            t.nc_captures + t.absorbed_downgrades + t.remote_writebacks + t.forced_eviction_events,
            "{ctx}"
        );
        assert!(t.forced_eviction_events <= m.forced_evictions, "{ctx}");
        // OS page operations: relocation-cost events are 1:1 with the
        // os_page_ops composition.
        assert_eq!(t.relocation_like, m.os_page_ops(), "{ctx}");
        assert_eq!(
            c.count(Phase::Relocation),
            t.relocation_like + t.zero_cost_page_ops,
            "{ctx}"
        );
    }
}

#[test]
fn estimated_cycles_are_counts_times_table_latencies() {
    let trace = random_trace(5, 4000);
    for spec in config_matrix() {
        let name = spec.name.clone();
        let (c, t, m) = profiled_run(&spec, &trace);
        let model = LatencyModel::new(Latencies::paper_default(), spec.technology());
        let l = *model.latencies();
        let ctx = format!("config {name}");
        assert_eq!(c.cycles(Phase::CacheHit), 0, "{ctx}");
        assert_eq!(
            c.cycles(Phase::BusTransfer),
            m.peer_transfers * l.cache_to_cache,
            "{ctx}"
        );
        if c.count(Phase::NcLookup) > 0 {
            // nc_hit() panics without an NC, but then the count is 0.
            assert_eq!(
                c.cycles(Phase::NcLookup),
                (m.nc_read_hits + m.nc_write_hits) * model.nc_hit(),
                "{ctx}"
            );
        }
        assert_eq!(
            c.cycles(Phase::PageCachePath),
            (m.pc_read_hits + m.pc_write_hits) * model.pc_hit(),
            "{ctx}"
        );
        assert_eq!(
            c.cycles(Phase::LocalFill),
            m.local_misses * l.dram_access,
            "{ctx}"
        );
        assert_eq!(
            c.cycles(Phase::RemoteFill),
            c.count(Phase::RemoteFill) * model.remote_miss(),
            "{ctx}"
        );
        // The profiler charges cache-to-cache per copy named in the
        // event, which excludes NC/PC copy invalidations (those show up
        // in `metrics.invalidations` but not in the event's `copies`).
        assert_eq!(
            c.cycles(Phase::DirectoryProbe),
            t.ownership_requests * l.remote_access + t.invalidated_copies * l.cache_to_cache,
            "{ctx}"
        );
        assert_eq!(
            c.cycles(Phase::VictimPath),
            m.remote_writebacks * l.remote_access
                + (t.nc_captures + t.absorbed_downgrades) * l.cache_to_cache
                + t.forced_eviction_events * l.tag_check,
            "{ctx}"
        );
        // The Eq. 1 relocation term, exactly: os_page_ops x 225.
        assert_eq!(
            c.cycles(Phase::Relocation),
            m.os_page_ops() * model.relocation(),
            "{ctx}"
        );
    }
}

#[test]
fn per_cluster_rows_sum_to_machine_wide_counts() {
    let trace = random_trace(6, 4000);
    for spec in config_matrix() {
        let name = spec.name.clone();
        let (c, _, m) = profiled_run(&spec, &trace);
        let ctx = format!("config {name}");
        assert!(
            c.per_cluster().len() <= usize::from(topo().clusters()),
            "{ctx}: more occupancy rows than clusters"
        );
        for (p_idx, &p) in PHASES.iter().enumerate() {
            let by_cluster: u64 = c.per_cluster().iter().map(|row| row[p_idx]).sum();
            assert_eq!(by_cluster, c.count(p), "{ctx}: phase {}", p.label());
        }
        let all_clusters: u64 = (0..c.per_cluster().len())
            .map(|i| c.cluster_events(i))
            .sum();
        assert_eq!(all_clusters, c.total_events(), "{ctx}");
        // Every shared reference shows up in some cluster's primary row.
        let primary_by_cluster: u64 = c
            .per_cluster()
            .iter()
            .flat_map(|row| {
                PHASES
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.is_primary())
                    .map(|(i, _)| row[i])
            })
            .sum();
        assert_eq!(primary_by_cluster, m.shared_refs, "{ctx}");
    }
}

#[test]
fn profiler_does_not_perturb_the_simulation() {
    let trace = random_trace(7, 4000);
    let data_bytes = 16 * Geometry::paper_default().page_bytes();
    for spec in config_matrix() {
        let name = spec.name.clone();
        let mut plain = System::new(spec.clone(), topo(), Geometry::paper_default(), data_bytes)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        plain.run_shared(&trace);
        let (_, _, profiled_metrics) = profiled_run(&spec, &trace);
        assert_eq!(
            plain.metrics(),
            &profiled_metrics,
            "config {name}: the phase profiler perturbed the simulation"
        );
    }
}

#[test]
fn merged_halves_equal_the_whole_run_counters() {
    // Two profilers over one continuous system (swap at the midpoint)
    // merge to exactly the whole-run counters — the property the sweep
    // rollups and any future sharded replay rely on. Histograms differ
    // only in the gap buckets at the seam, so compare counts and cycles.
    let trace = random_trace(8, 4000);
    let spec = SystemSpec::vb().with_cache(2048, 2);
    let (whole, _, _) = profiled_run(&spec, &trace);
    let mut merged = PhaseCounters::new();
    // NcTechnology is Sram for vb; build the same model the spec implies.
    let model = || LatencyModel::new(Latencies::paper_default(), spec.technology());
    let data_bytes = 16 * Geometry::paper_default().page_bytes();
    let mut sys = System::with_probe(
        spec.clone(),
        topo(),
        Geometry::paper_default(),
        data_bytes,
        PhaseProfiler::new(model()),
    )
    .expect("valid spec");
    let half = trace.len() / 2;
    for i in 0..half {
        sys.process(trace.get(i));
    }
    let first = std::mem::replace(sys.probe_mut(), PhaseProfiler::new(model())).into_counters();
    for i in half..trace.len() {
        sys.process(trace.get(i));
    }
    sys.finish();
    let (second, _) = sys.into_probe();
    merged.merge(&first);
    merged.merge(&second.into_counters());
    for &p in &PHASES {
        assert_eq!(merged.count(p), whole.count(p), "phase {}", p.label());
        assert_eq!(merged.cycles(p), whole.cycles(p), "phase {}", p.label());
    }
    assert_eq!(merged.per_cluster(), whole.per_cluster());
}
