//! Randomized model-checking tests on the core data structures and on the
//! full system under pseudo-random reference streams.
//!
//! These were property-based (proptest) tests in spirit; they are driven
//! by the workspace's own deterministic [`TraceRng`] so the test suite
//! carries no external dependencies and every failure is reproducible from
//! the printed case seed.

use std::collections::VecDeque;

use dsm_cache::{CacheShape, SetAssoc};
use dsm_core::{PcSize, System, SystemSpec};
use dsm_directory::FullMapDirectory;
use dsm_trace::rng::TraceRng;
use dsm_types::{
    Addr, BlockAddr, ClusterId, Geometry, LocalProcId, MemOp, MemRef, ProcId, Topology,
};

// ---------------------------------------------------------------------
// SetAssoc vs a reference model (per-set LRU list).
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum ArrayOp {
    Insert(u64, u32),
    Get(u64),
    Remove(u64),
}

fn array_ops(rng: &mut TraceRng) -> Vec<ArrayOp> {
    let n = rng.below(200) as usize;
    (0..n)
        .map(|_| match rng.below(3) {
            0 => ArrayOp::Insert(rng.below(32), rng.below(u64::from(u32::MAX)) as u32),
            1 => ArrayOp::Get(rng.below(32)),
            _ => ArrayOp::Remove(rng.below(32)),
        })
        .collect()
}

/// Reference model: per set, an MRU-ordered list of (tag, value).
#[derive(Default)]
struct ModelSet {
    entries: VecDeque<(u64, u32)>, // front = MRU
}

#[test]
fn set_assoc_matches_lru_model() {
    const SETS: usize = 2;
    const WAYS: usize = 3;
    for case in 0..64u64 {
        let mut rng = TraceRng::for_workload("set_assoc", case);
        let ops = array_ops(&mut rng);
        let shape = CacheShape::from_sets_ways(SETS, WAYS, 64).unwrap();
        let mut sut: SetAssoc<u32> = SetAssoc::new(shape);
        let mut model: Vec<ModelSet> = (0..SETS).map(|_| ModelSet::default()).collect();

        for op in ops {
            match op {
                ArrayOp::Insert(tag, value) => {
                    let set = (tag as usize) % SETS;
                    let evicted = sut.insert(set, tag, value);
                    let m = &mut model[set];
                    if let Some(pos) = m.entries.iter().position(|e| e.0 == tag) {
                        m.entries.remove(pos);
                        m.entries.push_front((tag, value));
                        assert!(evicted.is_none(), "case {case}");
                    } else {
                        m.entries.push_front((tag, value));
                        if m.entries.len() > WAYS {
                            let lru = m.entries.pop_back().unwrap();
                            assert_eq!(evicted, Some(lru), "case {case}");
                        } else {
                            assert!(evicted.is_none(), "case {case}");
                        }
                    }
                }
                ArrayOp::Get(tag) => {
                    let set = (tag as usize) % SETS;
                    let got = sut.get(set, tag).copied();
                    let m = &mut model[set];
                    let expect = m.entries.iter().position(|e| e.0 == tag).map(|pos| {
                        let e = m.entries.remove(pos).unwrap();
                        m.entries.push_front(e);
                        e.1
                    });
                    assert_eq!(got, expect, "case {case}");
                }
                ArrayOp::Remove(tag) => {
                    let set = (tag as usize) % SETS;
                    let got = sut.remove(set, tag);
                    let m = &mut model[set];
                    let expect = m
                        .entries
                        .iter()
                        .position(|e| e.0 == tag)
                        .map(|pos| m.entries.remove(pos).unwrap().1);
                    assert_eq!(got, expect, "case {case}");
                }
            }
        }
        // Final occupancy agrees.
        let total: usize = model.iter().map(|m| m.entries.len()).sum();
        assert_eq!(sut.len(), total, "case {case}");
    }
}

// ---------------------------------------------------------------------
// Trace codec: roundtrip over arbitrary traces.
// ---------------------------------------------------------------------

fn arbitrary_trace(rng: &mut TraceRng, max_len: u64) -> Vec<MemRef> {
    let n = rng.below(max_len) as usize;
    (0..n)
        .map(|_| {
            MemRef::new(
                ProcId(rng.below(32) as u16),
                if rng.chance(0.5) {
                    MemOp::Write
                } else {
                    MemOp::Read
                },
                Addr(rng.below(u64::MAX)),
            )
        })
        .collect()
}

#[test]
fn codec_roundtrips_any_trace() {
    for case in 0..64u64 {
        let mut rng = TraceRng::for_workload("codec_rt", case);
        let trace = arbitrary_trace(&mut rng, 300);
        let topo = Topology::paper_default();
        let mut bytes = Vec::new();
        dsm_trace::write_trace(&mut bytes, &topo, &trace).unwrap();
        let (topo2, trace2) = dsm_trace::read_trace(bytes.as_slice()).unwrap();
        assert_eq!(topo, topo2, "case {case}");
        assert_eq!(trace, trace2, "case {case}");
    }
}

#[test]
fn codec_rejects_any_truncation() {
    for case in 0..64u64 {
        let mut rng = TraceRng::for_workload("codec_trunc", case);
        let trace = arbitrary_trace(&mut rng, 100);
        if trace.is_empty() {
            continue;
        }
        let topo = Topology::paper_default();
        let mut bytes = Vec::new();
        dsm_trace::write_trace(&mut bytes, &topo, &trace).unwrap();
        let cut = (rng.below(100) as usize) % bytes.len();
        if cut == 0 {
            continue; // empty prefix: exercised by unit tests
        }
        bytes.truncate(cut);
        assert!(
            dsm_trace::read_trace(bytes.as_slice()).is_err(),
            "case {case}: truncation at {cut} accepted"
        );
    }
}

// ---------------------------------------------------------------------
// Page cache vs a least-recently-missed reference model.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum PcOp {
    Insert(u8),
    Lookup(u8, u8),
    InvalidateBlock(u8, u8),
}

fn pc_ops(rng: &mut TraceRng) -> Vec<PcOp> {
    let n = rng.below(150) as usize;
    (0..n)
        .map(|_| match rng.below(3) {
            0 => PcOp::Insert(rng.below(12) as u8),
            1 => PcOp::Lookup(rng.below(12) as u8, rng.below(64) as u8),
            _ => PcOp::InvalidateBlock(rng.below(12) as u8, rng.below(64) as u8),
        })
        .collect()
}

#[test]
fn page_cache_matches_lrm_model() {
    use dsm_core::page_cache::{PageCache, PcBlockState};
    const CAP: usize = 3;
    for case in 0..64u64 {
        let mut rng = TraceRng::for_workload("page_cache", case);
        let ops = pc_ops(&mut rng);
        let geo = Geometry::paper_default();
        let mut pc = PageCache::new(CAP, geo);
        // Model: pages ordered by last miss-touch, front = most recent.
        let mut model: VecDeque<u64> = VecDeque::new();

        for op in ops {
            match op {
                PcOp::Insert(p) => {
                    let page = dsm_types::PageAddr(u64::from(p));
                    let evicted = pc.insert_page(page, |_| PcBlockState::Clean);
                    if model.contains(&u64::from(p)) {
                        assert!(evicted.is_none(), "case {case}");
                    } else {
                        if model.len() >= CAP {
                            let lrm = model.pop_back().unwrap();
                            assert_eq!(
                                evicted.as_ref().map(|e| e.page.0),
                                Some(lrm),
                                "case {case}"
                            );
                        } else {
                            assert!(evicted.is_none(), "case {case}");
                        }
                        model.push_front(u64::from(p));
                    }
                }
                PcOp::Lookup(p, b) => {
                    let block = BlockAddr(u64::from(p) * 64 + u64::from(b));
                    let hit = pc.lookup_block(block);
                    let in_model = model.contains(&u64::from(p));
                    assert_eq!(hit.is_some(), in_model, "case {case}");
                    if let Some(pos) = model.iter().position(|&x| x == u64::from(p)) {
                        let v = model.remove(pos).unwrap();
                        model.push_front(v);
                    }
                }
                PcOp::InvalidateBlock(p, b) => {
                    let block = BlockAddr(u64::from(p) * 64 + u64::from(b));
                    pc.invalidate_block(block);
                    // Invalidation does not change residency or LRM order.
                }
            }
            assert_eq!(pc.len(), model.len(), "case {case}");
            assert!(pc.len() <= CAP, "case {case}");
        }
    }
}

// ---------------------------------------------------------------------
// Directory invariants under random request sequences.
// ---------------------------------------------------------------------

#[test]
fn directory_owner_is_always_a_sharer() {
    for case in 0..64u64 {
        let mut rng = TraceRng::for_workload("directory", case);
        let mut dir = FullMapDirectory::new(4);
        let n = rng.below(120) as usize;
        for _ in 0..n {
            let c = ClusterId(rng.below(4) as u16);
            let b = BlockAddr(rng.below(3));
            match rng.below(3) {
                0 => {
                    dir.read(b, c);
                }
                1 => {
                    let g = dir.write(b, c);
                    // The writer is never asked to invalidate itself.
                    assert!(!g.invalidate.contains(c), "case {case}");
                }
                _ => {
                    dir.writeback(b, c);
                }
            }
            for b in 0u64..3 {
                let block = BlockAddr(b);
                if let Some(owner) = dir.owner_of(block) {
                    assert!(
                        dir.has_presence(block, owner),
                        "case {case}: owner {owner} of {block} lacks a presence bit"
                    );
                    // An owned block has exactly one sharer.
                    assert_eq!(dir.sharers(block), vec![owner], "case {case}");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Full-system invariants under random reference streams.
// ---------------------------------------------------------------------

fn ref_stream(rng: &mut TraceRng) -> Vec<MemRef> {
    let n = 1 + rng.below(399) as usize;
    (0..n)
        .map(|_| {
            MemRef::new(
                ProcId(rng.below(32) as u16),
                if rng.chance(0.5) {
                    MemOp::Write
                } else {
                    MemOp::Read
                },
                Addr(rng.below(64 * 1024)),
            )
        })
        .collect()
}

fn check_system_invariants(spec: SystemSpec, refs: &[MemRef], case: u64) {
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    let mut sys = System::new(spec, topo, geo, 1024 * 1024).unwrap();
    sys.run(refs.iter().copied());

    // Conservation: every reference classified exactly once.
    let m = sys.metrics();
    assert_eq!(m.shared_refs, refs.len() as u64, "case {case}");
    let classified = m.read_hits
        + m.write_hits
        + m.local_upgrades
        + m.peer_transfers
        + m.nc_read_hits
        + m.nc_write_hits
        + m.pc_read_hits
        + m.pc_write_hits
        + m.remote_read_necessary
        + m.remote_read_capacity
        + m.remote_write_necessary
        + m.remote_write_capacity
        + m.local_misses;
    assert_eq!(
        classified, m.shared_refs,
        "case {case}: unclassified refs: {m:#?}"
    );

    // Single-writer invariant over every touched block.
    let mut blocks: Vec<u64> = refs.iter().map(|r| geo.block_of(r.addr).0).collect();
    blocks.sort_unstable();
    blocks.dedup();
    for b in blocks {
        let block = BlockAddr(b);
        let mut writable = 0;
        let mut valid = 0;
        for c in topo.cluster_ids() {
            let unit = sys.cluster(c);
            for lp in 0..topo.procs_per_cluster() {
                let s = unit.bus.cache(LocalProcId(lp)).state_of(block);
                if s.is_valid() {
                    valid += 1;
                }
                if s.allows_silent_write() {
                    writable += 1;
                }
            }
        }
        assert!(
            writable <= 1,
            "case {case}: block {b:#x}: {writable} writable copies"
        );
        if writable == 1 {
            assert_eq!(
                valid, 1,
                "case {case}: block {b:#x}: M/E coexists with sharers"
            );
        }
    }
}

/// Runs the invariant check over `cases` random streams per spec.
fn invariant_cases(name: &str, spec: impl Fn() -> SystemSpec) {
    for case in 0..24u64 {
        let mut rng = TraceRng::for_workload(name, case);
        let refs = ref_stream(&mut rng);
        check_system_invariants(spec(), &refs, case);
    }
}

#[test]
fn base_system_invariants() {
    invariant_cases("base", SystemSpec::base);
}

#[test]
fn victim_nc_system_invariants() {
    invariant_cases("vb", SystemSpec::vb);
}

#[test]
fn page_indexed_victim_system_invariants() {
    invariant_cases("vp", SystemSpec::vp);
}

#[test]
fn inclusion_nc_system_invariants() {
    invariant_cases("nc", SystemSpec::nc);
}

#[test]
fn dram_nc_system_invariants() {
    invariant_cases("ncd", SystemSpec::ncd);
}

#[test]
fn page_cache_system_invariants() {
    invariant_cases("ncp", || SystemSpec::ncp(PcSize::Bytes(16 * 4096)));
}

#[test]
fn vxp_system_invariants() {
    invariant_cases("vxp", || SystemSpec::vxp(PcSize::Bytes(16 * 4096), 4));
}

#[test]
fn limited_directory_system_invariants() {
    invariant_cases("dir2b", || SystemSpec::vb().with_limited_directory(2));
}

#[test]
fn origin_system_invariants() {
    invariant_cases("origin", || {
        let mut spec = SystemSpec::origin();
        spec.migrep.as_mut().unwrap().threshold = 4;
        spec
    });
}

#[test]
fn system_is_deterministic() {
    for case in 0..24u64 {
        let mut rng = TraceRng::for_workload("determinism", case);
        let refs = ref_stream(&mut rng);
        let topo = Topology::paper_default();
        let geo = Geometry::paper_default();
        let run = || {
            let mut sys = System::new(
                SystemSpec::vbp(PcSize::Bytes(16 * 4096)),
                topo,
                geo,
                1024 * 1024,
            )
            .unwrap();
            sys.run(refs.iter().copied());
            *sys.metrics()
        };
        assert_eq!(run(), run(), "case {case}");
    }
}

#[test]
fn victim_nc_dominates_base_on_any_stream() {
    // The paper's "cannot be worse than no NC" claim, adversarially.
    for case in 0..24u64 {
        let mut rng = TraceRng::for_workload("dominance", case);
        let refs = ref_stream(&mut rng);
        let topo = Topology::paper_default();
        let geo = Geometry::paper_default();
        let run = |spec: SystemSpec| {
            let mut sys = System::new(spec, topo, geo, 1024 * 1024).unwrap();
            sys.run(refs.iter().copied());
            sys.metrics().remote_read_misses() + sys.metrics().remote_write_misses()
        };
        let base = run(SystemSpec::base());
        let vb = run(SystemSpec::vb());
        assert!(
            vb <= base,
            "case {case}: victim NC increased cluster misses: {vb} > {base}"
        );
    }
}
