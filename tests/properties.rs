//! Property-based tests on the core data structures and on the full
//! system under random reference streams.

use proptest::prelude::*;
use std::collections::VecDeque;

use dsm_cache::{CacheShape, SetAssoc};
use dsm_core::{PcSize, System, SystemSpec};
use dsm_directory::FullMapDirectory;
use dsm_types::{Addr, BlockAddr, ClusterId, Geometry, LocalProcId, MemOp, MemRef, ProcId, Topology};

// ---------------------------------------------------------------------
// SetAssoc vs a reference model (per-set LRU list).
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum ArrayOp {
    Insert(u64, u32),
    Get(u64),
    Remove(u64),
}

fn array_ops() -> impl Strategy<Value = Vec<ArrayOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..32, any::<u32>()).prop_map(|(t, v)| ArrayOp::Insert(t, v)),
            (0u64..32).prop_map(ArrayOp::Get),
            (0u64..32).prop_map(ArrayOp::Remove),
        ],
        0..200,
    )
}

/// Reference model: per set, an MRU-ordered list of (tag, value).
#[derive(Default)]
struct ModelSet {
    entries: VecDeque<(u64, u32)>, // front = MRU
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn set_assoc_matches_lru_model(ops in array_ops()) {
        const SETS: usize = 2;
        const WAYS: usize = 3;
        let shape = CacheShape::from_sets_ways(SETS, WAYS, 64).unwrap();
        let mut sut: SetAssoc<u32> = SetAssoc::new(shape);
        let mut model: Vec<ModelSet> = (0..SETS).map(|_| ModelSet::default()).collect();

        for op in ops {
            match op {
                ArrayOp::Insert(tag, value) => {
                    let set = (tag as usize) % SETS;
                    let evicted = sut.insert(set, tag, value);
                    let m = &mut model[set];
                    if let Some(pos) = m.entries.iter().position(|e| e.0 == tag) {
                        m.entries.remove(pos);
                        m.entries.push_front((tag, value));
                        prop_assert!(evicted.is_none());
                    } else {
                        m.entries.push_front((tag, value));
                        if m.entries.len() > WAYS {
                            let lru = m.entries.pop_back().unwrap();
                            prop_assert_eq!(evicted, Some(lru));
                        } else {
                            prop_assert!(evicted.is_none());
                        }
                    }
                }
                ArrayOp::Get(tag) => {
                    let set = (tag as usize) % SETS;
                    let got = sut.get(set, tag).copied();
                    let m = &mut model[set];
                    let expect = m.entries.iter().position(|e| e.0 == tag).map(|pos| {
                        let e = m.entries.remove(pos).unwrap();
                        m.entries.push_front(e);
                        e.1
                    });
                    prop_assert_eq!(got, expect);
                }
                ArrayOp::Remove(tag) => {
                    let set = (tag as usize) % SETS;
                    let got = sut.remove(set, tag);
                    let m = &mut model[set];
                    let expect = m
                        .entries
                        .iter()
                        .position(|e| e.0 == tag)
                        .map(|pos| m.entries.remove(pos).unwrap().1);
                    prop_assert_eq!(got, expect);
                }
            }
        }
        // Final occupancy agrees.
        let total: usize = model.iter().map(|m| m.entries.len()).sum();
        prop_assert_eq!(sut.len(), total);
    }
}

// ---------------------------------------------------------------------
// Trace codec: roundtrip over arbitrary traces.
// ---------------------------------------------------------------------

fn arbitrary_trace() -> impl Strategy<Value = Vec<MemRef>> {
    prop::collection::vec(
        (0u16..32, prop::bool::ANY, any::<u64>()).prop_map(|(p, w, a)| {
            MemRef::new(
                ProcId(p),
                if w { MemOp::Write } else { MemOp::Read },
                Addr(a),
            )
        }),
        0..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_roundtrips_any_trace(trace in arbitrary_trace()) {
        let topo = Topology::paper_default();
        let mut bytes = Vec::new();
        dsm_trace::write_trace(&mut bytes, &topo, &trace).unwrap();
        let (topo2, trace2) = dsm_trace::read_trace(bytes.as_slice()).unwrap();
        prop_assert_eq!(topo, topo2);
        prop_assert_eq!(trace, trace2);
    }

    #[test]
    fn codec_rejects_any_truncation(trace in arbitrary_trace(), cut in 0usize..100) {
        prop_assume!(!trace.is_empty());
        let topo = Topology::paper_default();
        let mut bytes = Vec::new();
        dsm_trace::write_trace(&mut bytes, &topo, &trace).unwrap();
        let cut = cut % bytes.len();
        if cut == 0 {
            return Ok(()); // empty prefix of the magic: still an error, but
                            // exercised by unit tests
        }
        bytes.truncate(cut);
        prop_assert!(dsm_trace::read_trace(bytes.as_slice()).is_err());
    }
}

// ---------------------------------------------------------------------
// Page cache vs a least-recently-missed reference model.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum PcOp {
    Insert(u8),
    Lookup(u8, u8),
    InvalidateBlock(u8, u8),
}

fn pc_ops() -> impl Strategy<Value = Vec<PcOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..12).prop_map(PcOp::Insert),
            (0u8..12, 0u8..64).prop_map(|(p, b)| PcOp::Lookup(p, b)),
            (0u8..12, 0u8..64).prop_map(|(p, b)| PcOp::InvalidateBlock(p, b)),
        ],
        0..150,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn page_cache_matches_lrm_model(ops in pc_ops()) {
        use dsm_core::page_cache::{PageCache, PcBlockState};
        const CAP: usize = 3;
        let geo = Geometry::paper_default();
        let mut pc = PageCache::new(CAP, geo);
        // Model: pages ordered by last miss-touch, front = most recent.
        let mut model: VecDeque<u64> = VecDeque::new();

        for op in ops {
            match op {
                PcOp::Insert(p) => {
                    let page = dsm_types::PageAddr(u64::from(p));
                    let evicted = pc.insert_page(page, |_| PcBlockState::Clean);
                    if model.contains(&u64::from(p)) {
                        prop_assert!(evicted.is_none());
                    } else {
                        if model.len() >= CAP {
                            let lrm = model.pop_back().unwrap();
                            prop_assert_eq!(
                                evicted.as_ref().map(|e| e.page.0),
                                Some(lrm)
                            );
                        } else {
                            prop_assert!(evicted.is_none());
                        }
                        model.push_front(u64::from(p));
                    }
                }
                PcOp::Lookup(p, b) => {
                    let block = BlockAddr(u64::from(p) * 64 + u64::from(b));
                    let hit = pc.lookup_block(block);
                    let in_model = model.contains(&u64::from(p));
                    prop_assert_eq!(hit.is_some(), in_model);
                    if let Some(pos) = model.iter().position(|&x| x == u64::from(p)) {
                        let v = model.remove(pos).unwrap();
                        model.push_front(v);
                    }
                }
                PcOp::InvalidateBlock(p, b) => {
                    let block = BlockAddr(u64::from(p) * 64 + u64::from(b));
                    pc.invalidate_block(block);
                    // Invalidation does not change residency or LRM order.
                }
            }
            prop_assert_eq!(pc.len(), model.len());
            prop_assert!(pc.len() <= CAP);
        }
    }
}

// ---------------------------------------------------------------------
// Directory invariants under random request sequences.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum DirOp {
    Read(u8, u8),
    Write(u8, u8),
    Writeback(u8, u8),
}

fn dir_ops() -> impl Strategy<Value = Vec<DirOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..4, 0u8..3).prop_map(|(c, b)| DirOp::Read(c, b)),
            (0u8..4, 0u8..3).prop_map(|(c, b)| DirOp::Write(c, b)),
            (0u8..4, 0u8..3).prop_map(|(c, b)| DirOp::Writeback(c, b)),
        ],
        0..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn directory_owner_is_always_a_sharer(ops in dir_ops()) {
        let mut dir = FullMapDirectory::new(4);
        for op in ops {
            match op {
                DirOp::Read(c, b) => {
                    dir.read(BlockAddr(u64::from(b)), ClusterId(u16::from(c)));
                }
                DirOp::Write(c, b) => {
                    let g = dir.write(BlockAddr(u64::from(b)), ClusterId(u16::from(c)));
                    // The writer is never asked to invalidate itself.
                    prop_assert!(!g.invalidate.contains(&ClusterId(u16::from(c))));
                }
                DirOp::Writeback(c, b) => {
                    dir.writeback(BlockAddr(u64::from(b)), ClusterId(u16::from(c)));
                }
            }
            for b in 0u64..3 {
                let block = BlockAddr(b);
                if let Some(owner) = dir.owner_of(block) {
                    prop_assert!(
                        dir.has_presence(block, owner),
                        "owner {owner} of {block} lacks a presence bit"
                    );
                    // An owned block has exactly one sharer.
                    prop_assert_eq!(dir.sharers(block), vec![owner]);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Full-system invariants under random reference streams.
// ---------------------------------------------------------------------

fn ref_stream() -> impl Strategy<Value = Vec<MemRef>> {
    prop::collection::vec(
        (0u16..32, prop::bool::ANY, 0u64..64 * 1024).prop_map(|(p, w, a)| {
            MemRef::new(
                ProcId(p),
                if w { MemOp::Write } else { MemOp::Read },
                Addr(a),
            )
        }),
        1..400,
    )
}

fn check_system_invariants(spec: SystemSpec, refs: &[MemRef]) -> Result<(), TestCaseError> {
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    let mut sys = System::new(spec, topo, geo, 1024 * 1024).unwrap();
    sys.run(refs.iter().copied());

    // Conservation: every reference classified exactly once.
    let m = sys.metrics();
    prop_assert_eq!(m.shared_refs, refs.len() as u64);
    let classified = m.read_hits
        + m.write_hits
        + m.local_upgrades
        + m.peer_transfers
        + m.nc_read_hits
        + m.nc_write_hits
        + m.pc_read_hits
        + m.pc_write_hits
        + m.remote_read_necessary
        + m.remote_read_capacity
        + m.remote_write_necessary
        + m.remote_write_capacity
        + m.local_misses;
    prop_assert_eq!(classified, m.shared_refs, "unclassified refs: {:#?}", m);

    // Single-writer invariant over every touched block.
    let mut blocks: Vec<u64> = refs.iter().map(|r| geo.block_of(r.addr).0).collect();
    blocks.sort_unstable();
    blocks.dedup();
    for b in blocks {
        let block = BlockAddr(b);
        let mut writable = 0;
        let mut valid = 0;
        for c in topo.cluster_ids() {
            let unit = sys.cluster(c);
            for lp in 0..topo.procs_per_cluster() {
                let s = unit.bus.cache(LocalProcId(lp)).state_of(block);
                if s.is_valid() {
                    valid += 1;
                }
                if s.allows_silent_write() {
                    writable += 1;
                }
            }
        }
        prop_assert!(writable <= 1, "block {b:#x}: {writable} writable copies");
        if writable == 1 {
            prop_assert_eq!(valid, 1, "block {:#x}: M/E coexists with sharers", b);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn base_system_invariants(refs in ref_stream()) {
        check_system_invariants(SystemSpec::base(), &refs)?;
    }

    #[test]
    fn victim_nc_system_invariants(refs in ref_stream()) {
        check_system_invariants(SystemSpec::vb(), &refs)?;
    }

    #[test]
    fn page_indexed_victim_system_invariants(refs in ref_stream()) {
        check_system_invariants(SystemSpec::vp(), &refs)?;
    }

    #[test]
    fn inclusion_nc_system_invariants(refs in ref_stream()) {
        check_system_invariants(SystemSpec::nc(), &refs)?;
    }

    #[test]
    fn dram_nc_system_invariants(refs in ref_stream()) {
        check_system_invariants(SystemSpec::ncd(), &refs)?;
    }

    #[test]
    fn page_cache_system_invariants(refs in ref_stream()) {
        check_system_invariants(SystemSpec::ncp(PcSize::Bytes(16 * 4096)), &refs)?;
    }

    #[test]
    fn vxp_system_invariants(refs in ref_stream()) {
        check_system_invariants(SystemSpec::vxp(PcSize::Bytes(16 * 4096), 4), &refs)?;
    }

    #[test]
    fn limited_directory_system_invariants(refs in ref_stream()) {
        check_system_invariants(SystemSpec::vb().with_limited_directory(2), &refs)?;
    }

    #[test]
    fn origin_system_invariants(refs in ref_stream()) {
        let mut spec = SystemSpec::origin();
        spec.migrep.as_mut().unwrap().threshold = 4;
        check_system_invariants(spec, &refs)?;
    }

    #[test]
    fn system_is_deterministic(refs in ref_stream()) {
        let topo = Topology::paper_default();
        let geo = Geometry::paper_default();
        let run = || {
            let mut sys = System::new(SystemSpec::vbp(PcSize::Bytes(16 * 4096)), topo, geo, 1024 * 1024).unwrap();
            sys.run(refs.iter().copied());
            sys.metrics().clone()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn victim_nc_dominates_base_on_any_stream(refs in ref_stream()) {
        // The paper's "cannot be worse than no NC" claim, adversarially.
        let topo = Topology::paper_default();
        let geo = Geometry::paper_default();
        let run = |spec: SystemSpec| {
            let mut sys = System::new(spec, topo, geo, 1024 * 1024).unwrap();
            sys.run(refs.iter().copied());
            sys.metrics().remote_read_misses() + sys.metrics().remote_write_misses()
        };
        let base = run(SystemSpec::base());
        let vb = run(SystemSpec::vb());
        prop_assert!(vb <= base, "victim NC increased cluster misses: {vb} > {base}");
    }
}
