//! Equivalence gates for the sharded `System::run_sharded` replay path.
//!
//! The sharded engines — component-parallel for traces whose sharing
//! graph splits, round-based for single-component traces — must produce
//! machine state *identical* (not statistically close) to the
//! single-thread `run_shared` oracle, at every worker count and on
//! every directory/cache configuration. These tests replay randomized
//! multi-component and single-component traces through both paths,
//! validate the merged state under the PR-5 invariant checker, and pin
//! the bounded-mailbox streaming layer against deadlock at capacity 1.

use dsm_core::shard::ShardTuning;
use dsm_core::{PcSize, ShardEngine, System, SystemSpec};
use dsm_trace::rng::TraceRng;
use dsm_trace::SharedTrace;
use dsm_types::{Addr, ClusterId, Geometry, MemOp, MemRef, ProcId, Topology};

/// Deterministic xorshift64* generator — no external crates, fixed seeds.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A random trace whose clusters split into `components` disjoint
/// sharing groups: cluster `c` belongs to group `c % components`, and
/// every reference from that cluster lands in the group's private 1 MiB
/// address window. Pages are shared freely *within* a group (so every
/// coherence transition still fires) but never across groups, which is
/// exactly the structure the shard planner detects.
fn component_refs(seed: u64, len: usize, topo: &Topology, components: u64) -> Vec<MemRef> {
    let mut rng = Rng(seed);
    let procs = u64::from(topo.total_procs());
    let per_cluster = u64::from(topo.procs_per_cluster());
    (0..len)
        .map(|_| {
            let r = rng.next();
            let proc = r % procs;
            let group = (proc / per_cluster) % components;
            let op = if (r >> 16) % 10 < 3 {
                MemOp::Write
            } else {
                MemOp::Read
            };
            // ~64 pages of reuse per group, in the group's own window.
            let addr = group * (1 << 20) + ((r >> 24) % (1 << 18));
            MemRef::new(ProcId(proc as u16), op, Addr(addr))
        })
        .collect()
}

fn oracle(spec: &SystemSpec, trace: &SharedTrace, data_bytes: u64) -> System {
    let mut sys = System::new(
        spec.clone(),
        *trace.topology(),
        *trace.geometry(),
        data_bytes,
    )
    .unwrap();
    sys.run_shared(trace);
    sys
}

fn sharded(
    spec: &SystemSpec,
    trace: &SharedTrace,
    data_bytes: u64,
    workers: usize,
) -> (System, usize) {
    let mut sys = System::new(
        spec.clone(),
        *trace.topology(),
        *trace.geometry(),
        data_bytes,
    )
    .unwrap();
    let engaged = sys.run_sharded(trace, workers);
    (sys, engaged)
}

fn assert_state_identical(a: &System, b: &System, label: &str) {
    assert_eq!(
        a.metrics(),
        b.metrics(),
        "aggregate metrics diverge: {label}"
    );
    for c in 0..a.topology().clusters() {
        assert_eq!(
            a.cluster_counts(ClusterId(c)),
            b.cluster_counts(ClusterId(c)),
            "cluster {c} counters diverge: {label}"
        );
    }
}

/// The core identity: every spec family the paper sweeps, replayed
/// sharded at several worker counts, must reproduce the oracle's
/// metrics and per-cluster counters exactly.
#[test]
fn sharded_replay_matches_oracle_across_specs_and_worker_counts() {
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    let specs = [
        SystemSpec::base(),
        SystemSpec::base().with_limited_directory(4),
        SystemSpec::vb(),
        SystemSpec::vpp(PcSize::DataFraction(5)),
        SystemSpec::vxp(PcSize::DataFraction(5), 32),
    ];
    for (seed, components) in [(5u64, 4u64), (0xFACE_FEED, 8)] {
        let refs = component_refs(seed, 30_000, &topo, components);
        let trace = SharedTrace::from_refs(topo, geo, &refs);
        for spec in &specs {
            let base = oracle(spec, &trace, 1 << 20);
            for workers in [1usize, 2, 4, 8] {
                let (sys, engaged) = sharded(spec, &trace, 1 << 20, workers);
                if workers >= 2 {
                    assert!(
                        engaged >= 2,
                        "{} with {workers} workers fell back on a {components}-component trace",
                        spec.name
                    );
                }
                assert_state_identical(
                    &base,
                    &sys,
                    &format!("{} at {workers} workers, seed {seed}", spec.name),
                );
            }
        }
    }
}

/// Migratory home policies (Origin migrep) rewrite pages' homes during
/// the run, which breaks the disjointness argument — the engine must
/// refuse to shard and still produce oracle-identical results.
#[test]
fn migratory_specs_fall_back_to_the_oracle() {
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    let refs = component_refs(23, 20_000, &topo, 4);
    let trace = SharedTrace::from_refs(topo, geo, &refs);
    let spec = SystemSpec::origin();
    let base = oracle(&spec, &trace, 1 << 20);
    let (sys, engaged) = sharded(&spec, &trace, 1 << 20, 4);
    assert_eq!(engaged, 1, "migrep systems must not shard");
    assert_state_identical(&base, &sys, "origin fallback");
}

/// The merged machine state after a sharded replay must satisfy every
/// PR-5 coherence invariant, and must equal the state the oracle
/// reaches when it validates those invariants after every reference
/// (check level K=1).
#[test]
fn sharded_state_passes_invariant_checker_against_k1_oracle() {
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    let refs = component_refs(31, 3_000, &topo, 4);
    let trace = SharedTrace::from_refs(topo, geo, &refs);
    for spec in [SystemSpec::vb(), SystemSpec::vpp(PcSize::DataFraction(5))] {
        let mut checked = System::new(spec.clone(), topo, geo, 1 << 20).unwrap();
        checked.set_check_level(1);
        checked.run_shared_checked(&trace).unwrap();
        let (sys, engaged) = sharded(&spec, &trace, 1 << 20, 4);
        assert!(engaged >= 2, "{} fell back unexpectedly", spec.name);
        sys.check_invariants()
            .unwrap_or_else(|e| panic!("merged {} state violates invariants: {e}", spec.name));
        assert_state_identical(&checked, &sys, &format!("{} vs K=1 oracle", spec.name));
    }
}

/// Backpressure: with single-slot mailboxes and a one-reference chunk
/// size, every send blocks until the committer drains — the run must
/// complete (no deadlock) and still match the oracle exactly.
#[test]
fn single_slot_mailboxes_stream_without_deadlock() {
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    let refs = component_refs(47, 20_000, &topo, 4);
    let trace = SharedTrace::from_refs(topo, geo, &refs);
    let spec = SystemSpec::vb();
    let base = oracle(&spec, &trace, 1 << 20);
    let mut sys = System::new(spec.clone(), topo, geo, 1 << 20).unwrap();
    let tuning = ShardTuning {
        chunk_refs: 1,
        mailbox_capacity: 1,
        min_parallel_refs: 1,
        ..ShardTuning::default()
    };
    let engaged = sys.run_sharded_with(&trace, 4, tuning);
    assert!(engaged >= 2, "backpressure test needs real sharding");
    assert_state_identical(&base, &sys, "capacity-1 mailboxes");
}

/// A *single-component* trace with kernel-like phase structure: local
/// phases where every cluster works random addresses in its own private
/// window (independent, so the rounds planner can parallelize them)
/// separated by a shared phase where all clusters hit one common window
/// (coupling the whole machine into one sharing component and forcing
/// cross-part coherence, which must replay serially).
fn phased_single_component_refs(seed: u64, topo: &Topology) -> Vec<MemRef> {
    let mut rng = TraceRng::for_workload("shard-fuzz", seed);
    let procs = u64::from(topo.total_procs());
    let ppc = u64::from(topo.procs_per_cluster());
    let mut refs = Vec::new();
    let local = |refs: &mut Vec<MemRef>, rng: &mut TraceRng, n: u64| {
        for _ in 0..n {
            let p = rng.below(procs);
            let cl = p / ppc;
            let addr = (1 + cl) * (1 << 20) + rng.below(1 << 16);
            let op = if rng.chance(0.3) {
                MemOp::Write
            } else {
                MemOp::Read
            };
            refs.push(MemRef::new(ProcId(p as u16), op, Addr(addr)));
        }
    };
    local(&mut refs, &mut rng, 8_000);
    for _ in 0..2_000 {
        let p = rng.below(procs);
        let op = if rng.chance(0.2) {
            MemOp::Write
        } else {
            MemOp::Read
        };
        refs.push(MemRef::new(ProcId(p as u16), op, Addr(rng.below(1 << 14))));
    }
    local(&mut refs, &mut rng, 8_000);
    refs
}

/// The intra-component identity: single-component traces must engage
/// the rounds engine (not fall back to the oracle) and still reproduce
/// the oracle's state exactly, for every spec family and worker count.
#[test]
fn intra_component_rounds_match_oracle_across_specs_and_worker_counts() {
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    let specs = [
        SystemSpec::base(),
        SystemSpec::base().with_limited_directory(4),
        SystemSpec::vb(),
        SystemSpec::vpp(PcSize::DataFraction(5)),
        SystemSpec::vxp(PcSize::DataFraction(5), 32),
    ];
    let tuning = ShardTuning {
        chunk_refs: 1 << 12,
        mailbox_capacity: 8,
        min_parallel_refs: 512,
        ..ShardTuning::default()
    };
    for seed in [7u64, 0xDEAD_BEEF] {
        let refs = phased_single_component_refs(seed, &topo);
        let trace = SharedTrace::from_refs(topo, geo, &refs);
        assert_eq!(trace.shard_plan().len(), 1, "trace must be one component");
        for spec in &specs {
            let base = oracle(spec, &trace, 1 << 20);
            for workers in [2usize, 4] {
                let mut sys = System::new(spec.clone(), topo, geo, 1 << 20).unwrap();
                let engaged = sys.run_sharded_with(&trace, workers, tuning);
                let label = format!("{} at {workers} workers, seed {seed}", spec.name);
                assert!(engaged >= 2, "fell back to the oracle: {label}");
                let report = sys.shard_report().expect("sharded run must report");
                assert_eq!(report.engine, ShardEngine::Rounds, "{label}");
                assert!(report.parallel_rounds >= 1, "no parallel rounds: {label}");
                assert_eq!(
                    report.parallel_refs + report.serial_refs,
                    trace.len() as u64,
                    "split must cover the trace: {label}"
                );
                assert_state_identical(&base, &sys, &label);
            }
        }
    }
}

/// Round-barrier backpressure: capacity-1 mailboxes with one-reference
/// chunks force every worker send to block on the committer inside each
/// round — the run must complete and stay oracle-identical.
#[test]
fn rounds_with_capacity_1_mailboxes_stream_without_deadlock() {
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    let refs = phased_single_component_refs(99, &topo);
    let trace = SharedTrace::from_refs(topo, geo, &refs);
    let spec = SystemSpec::vb();
    let base = oracle(&spec, &trace, 1 << 20);
    let mut sys = System::new(spec.clone(), topo, geo, 1 << 20).unwrap();
    let tuning = ShardTuning {
        chunk_refs: 1,
        mailbox_capacity: 1,
        min_parallel_refs: 256,
        ..ShardTuning::default()
    };
    let engaged = sys.run_sharded_with(&trace, 4, tuning);
    assert!(engaged >= 2, "rounds backpressure test needs real sharding");
    let report = sys.shard_report().unwrap();
    assert_eq!(report.engine, ShardEngine::Rounds);
    assert!(report.parallel_rounds >= 1);
    assert_state_identical(&base, &sys, "rounds capacity-1 mailboxes");
}
