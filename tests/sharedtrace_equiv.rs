//! Equivalence gates for the columnar `SharedTrace` replay path.
//!
//! The batched `System::run_shared` fast path must be observationally
//! identical to the original per-reference `System::process` loop: same
//! aggregate metrics, same per-cluster counters, on every directory and
//! cache configuration. These tests replay randomized traces through both
//! paths and also pin the v2 columnar codec as a lossless round trip, so
//! a future change to the decomposition columns or the batch decoder
//! fails loudly rather than silently shifting figures.

use dsm_core::{System, SystemSpec};
use dsm_trace::{read_shared, read_trace, write_shared, Scale, SharedTrace, WorkloadKind};
use dsm_types::{Addr, ClusterId, Geometry, MemOp, MemRef, ProcId, Topology};

/// Deterministic xorshift64* generator — no external crates, fixed seeds.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A random trace with enough block/page reuse to exercise every
/// coherence transition: small address space, mixed read/write.
fn random_refs(seed: u64, len: usize, topo: &Topology) -> Vec<MemRef> {
    let mut rng = Rng(seed);
    let procs = u64::from(topo.total_procs());
    (0..len)
        .map(|_| {
            let r = rng.next();
            let proc = ProcId((r % procs) as u16);
            let op = if (r >> 16) % 10 < 3 {
                MemOp::Write
            } else {
                MemOp::Read
            };
            // ~64 pages of 4 KiB, biased toward low addresses for reuse.
            let addr = Addr((r >> 24) % (1 << 18));
            MemRef::new(proc, op, addr)
        })
        .collect()
}

/// Replays `refs` through the original per-reference entry point.
fn metrics_per_ref(spec: &SystemSpec, refs: &[MemRef], data_bytes: u64) -> System {
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    let mut sys = System::new(spec.clone(), topo, geo, data_bytes).unwrap();
    for &r in refs {
        sys.process(r);
    }
    sys
}

/// Replays the same trace through the columnar batched path.
fn metrics_shared(spec: &SystemSpec, trace: &SharedTrace, data_bytes: u64) -> System {
    let mut sys = System::new(
        spec.clone(),
        *trace.topology(),
        *trace.geometry(),
        data_bytes,
    )
    .unwrap();
    sys.run_shared(trace);
    sys
}

fn assert_paths_agree(spec: &SystemSpec, refs: &[MemRef], data_bytes: u64) {
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    let trace = SharedTrace::from_refs(topo, geo, refs);
    let a = metrics_per_ref(spec, refs, data_bytes);
    let b = metrics_shared(spec, &trace, data_bytes);
    assert_eq!(
        a.metrics(),
        b.metrics(),
        "aggregate metrics diverge on {}",
        spec.name
    );
    for c in 0..topo.clusters() {
        assert_eq!(
            a.cluster_counts(ClusterId(c)),
            b.cluster_counts(ClusterId(c)),
            "cluster {c} counters diverge on {}",
            spec.name
        );
    }
}

#[test]
fn shared_trace_round_trips_random_refs() {
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    for seed in [3, 0xFEED_BEEF, 0xABCD_EF01_2345_6789] {
        let refs = random_refs(seed, 5000, &topo);
        let trace = SharedTrace::from_refs(topo, geo, &refs);
        assert_eq!(trace.len(), refs.len());
        let back: Vec<MemRef> = trace.iter().collect();
        assert_eq!(back, refs, "iter() must reproduce the input, seed {seed}");
        for (i, &r) in refs.iter().enumerate() {
            assert_eq!(trace.get(i), r, "get({i}) mismatch, seed {seed}");
        }
    }
}

#[test]
fn codec_v2_round_trips_shared_traces() {
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    let refs = random_refs(11, 4000, &topo);
    let trace = SharedTrace::from_refs(topo, geo, &refs);

    let mut buf = Vec::new();
    write_shared(&mut buf, &trace).unwrap();

    // Columnar read-back reproduces topology, geometry and every column.
    let back = read_shared(buf.as_slice()).unwrap();
    assert_eq!(back.topology(), &topo);
    assert_eq!(back.geometry(), &geo);
    assert_eq!(back.len(), trace.len());
    assert!(trace.iter().eq(back.iter()), "columns diverge after codec");

    // The record-oriented API accepts the same bytes.
    let (t2, recs) = read_trace(buf.as_slice()).unwrap();
    assert_eq!(t2, topo);
    assert_eq!(recs, refs);
}

#[test]
fn batched_replay_matches_per_ref_on_full_map() {
    let topo = Topology::paper_default();
    for seed in [1, 42, 0xD15C_0B0B] {
        let refs = random_refs(seed, 20_000, &topo);
        assert_paths_agree(&SystemSpec::base(), &refs, 1 << 20);
    }
}

#[test]
fn batched_replay_matches_per_ref_on_victim_nc() {
    let topo = Topology::paper_default();
    for seed in [2, 0xBAD_CAFE] {
        let refs = random_refs(seed, 20_000, &topo);
        assert_paths_agree(&SystemSpec::vb(), &refs, 1 << 20);
        assert_paths_agree(&SystemSpec::vp(), &refs, 1 << 20);
    }
}

#[test]
fn batched_replay_matches_per_ref_on_limited_directory() {
    let topo = Topology::paper_default();
    let refs = random_refs(7, 20_000, &topo);
    assert_paths_agree(
        &SystemSpec::base().with_limited_directory(4),
        &refs,
        1 << 20,
    );
    assert_paths_agree(&SystemSpec::vb().with_limited_directory(2), &refs, 1 << 20);
}

#[test]
fn page_cache_systems_agree_across_paths() {
    use dsm_core::PcSize;
    let topo = Topology::paper_default();
    let refs = random_refs(13, 20_000, &topo);
    assert_paths_agree(&SystemSpec::vpp(PcSize::DataFraction(5)), &refs, 1 << 20);
    assert_paths_agree(
        &SystemSpec::vxp(PcSize::DataFraction(5), 32),
        &refs,
        1 << 20,
    );
}

#[test]
fn migratory_systems_fall_back_and_agree() {
    // `origin` carries a migration/replication policy, so `run_shared`
    // must reject the precomputed homes and take the per-reference
    // fallback; both paths still have to agree exactly.
    let topo = Topology::paper_default();
    let refs = random_refs(17, 20_000, &topo);
    assert_paths_agree(&SystemSpec::origin(), &refs, 1 << 20);
}

#[test]
fn workload_traces_agree_across_paths() {
    // Real generated traces (not uniform-random) stress first-touch
    // decomposition with realistic sharing patterns.
    for kind in [WorkloadKind::Fft, WorkloadKind::Barnes] {
        let w = kind.dev_instance();
        let topo = Topology::paper_default();
        let refs = w.generate(&topo, Scale::new(0.25).unwrap());
        assert_paths_agree(&SystemSpec::vb(), &refs, w.shared_bytes());
    }
}
