//! End-to-end system invariants across configurations: the orderings the
//! paper's design arguments rest on must hold on real (dev-sized)
//! workload traces.

use dsm_core::runner::{run_trace, run_workload};
use dsm_core::{PcSize, Report, SystemSpec};
use dsm_trace::{Scale, SharedTrace, WorkloadKind};
use dsm_types::{Geometry, Topology};

fn dev_reports(kind: WorkloadKind, specs: &[SystemSpec]) -> Vec<Report> {
    let w = kind.dev_instance();
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    let refs = w.generate(&topo, Scale::new(0.5).unwrap());
    let trace = SharedTrace::from_refs(topo, geo, &refs);
    specs
        .iter()
        .map(|s| run_trace(s, w.name(), w.shared_bytes(), &trace).unwrap())
        .collect()
}

#[test]
fn reports_are_deterministic() {
    let w = WorkloadKind::Lu.dev_instance();
    let a = run_workload(&SystemSpec::vb(), w.as_ref(), Scale::new(0.5).unwrap()).unwrap();
    let b = run_workload(&SystemSpec::vb(), w.as_ref(), Scale::new(0.5).unwrap()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn victim_nc_never_hurts_the_miss_ratio() {
    // The paper: a victim NC "cannot be worse than a system without NC"
    // because it holds only victims and maintains no inclusion.
    for kind in WorkloadKind::all() {
        let r = dev_reports(kind, &[SystemSpec::base(), SystemSpec::vb()]);
        let base = r[0].read_miss_ratio + r[0].write_miss_ratio;
        let vb = r[1].read_miss_ratio + r[1].write_miss_ratio;
        assert!(vb <= base + 1e-12, "{kind}: vb {vb} > base {base}");
    }
}

#[test]
fn infinite_sram_nc_is_a_lower_bound_on_stall() {
    for kind in [WorkloadKind::Fft, WorkloadKind::Radix, WorkloadKind::Barnes] {
        let r = dev_reports(
            kind,
            &[
                SystemSpec::ncs(),
                SystemSpec::base(),
                SystemSpec::vb(),
                SystemSpec::nc(),
            ],
        );
        for other in &r[1..] {
            assert!(
                r[0].remote_read_stall <= other.remote_read_stall,
                "{kind}: NCS {} > {} {}",
                r[0].remote_read_stall,
                other.system,
                other.remote_read_stall
            );
        }
    }
}

#[test]
fn infinite_nc_sees_only_necessary_misses() {
    for kind in [WorkloadKind::Lu, WorkloadKind::Radix] {
        let r = dev_reports(kind, &[SystemSpec::ncs()]);
        assert_eq!(
            r[0].metrics.remote_read_capacity, 0,
            "{kind}: capacity misses leaked past an infinite NC"
        );
        assert_eq!(r[0].metrics.remote_write_capacity, 0, "{kind}");
    }
}

#[test]
fn dram_nc_pays_tag_check_on_every_remote_miss() {
    // Same trace, same event counts modulo NC behaviour: NCD-inf's stall
    // per remote read must exceed NCS's (13 vs 1 on hits, 33 vs 30 on
    // misses) whenever remote reads exist.
    let r = dev_reports(
        WorkloadKind::Fft,
        &[SystemSpec::ncs(), SystemSpec::infinite_dram()],
    );
    assert_eq!(
        r[0].metrics.remote_read_misses(),
        r[1].metrics.remote_read_misses(),
        "infinite NCs must satisfy identical miss sets"
    );
    assert!(r[0].remote_read_stall < r[1].remote_read_stall);
}

#[test]
fn event_counts_are_conserved() {
    // Every shared read lands in exactly one bucket.
    for kind in WorkloadKind::all() {
        for spec in [
            SystemSpec::base(),
            SystemSpec::vb(),
            SystemSpec::ncd(),
            SystemSpec::vbp(PcSize::Bytes(512 * 1024)),
        ] {
            let r = dev_reports(kind, &[spec])[0].clone();
            let m = &r.metrics;
            assert_eq!(m.shared_refs, m.reads + m.writes, "{kind}/{}", r.system);
            let read_events =
                m.read_hits + m.nc_read_hits + m.pc_read_hits + m.remote_read_misses();
            // Peer transfers and local misses cover both reads and writes,
            // so reads are bounded, not equal.
            assert!(
                read_events <= m.reads,
                "{kind}/{}: classified {read_events} > reads {}",
                r.system,
                m.reads
            );
            let classified = read_events
                + m.write_hits
                + m.local_upgrades
                + m.nc_write_hits
                + m.pc_write_hits
                + m.remote_write_necessary
                + m.remote_write_capacity
                + m.peer_transfers
                + m.local_misses;
            assert_eq!(classified, m.shared_refs, "{kind}/{}: {m:#?}", r.system);
        }
    }
}

#[test]
fn page_cache_systems_resolve_fraction_sizes() {
    let w = WorkloadKind::Ocean.dev_instance();
    let r = run_workload(
        &SystemSpec::ncp(PcSize::DataFraction(5)),
        w.as_ref(),
        Scale::new(0.3).unwrap(),
    )
    .unwrap();
    assert!(r.refs > 0);
    // 1/5 of the data set in pages.
    let expected = w.shared_bytes() / 5 / 4096;
    assert!(expected > 0);
}

#[test]
fn miss_ratios_are_probabilities() {
    for kind in WorkloadKind::all() {
        let r = dev_reports(kind, &[SystemSpec::ncd()])[0].clone();
        assert!((0.0..=1.0).contains(&r.read_miss_ratio), "{kind}");
        assert!((0.0..=1.0).contains(&r.write_miss_ratio), "{kind}");
        assert!(r.relocation_overhead >= 0.0, "{kind}");
    }
}

#[test]
fn stall_equation_matches_metrics() {
    // Recompute Equation 1 by hand from the counters.
    let r = dev_reports(
        WorkloadKind::Raytrace,
        &[SystemSpec::vbp(PcSize::Bytes(512 * 1024))],
    )[0]
    .clone();
    let m = &r.metrics;
    let by_hand =
        m.nc_read_hits + m.pc_read_hits * 10 + m.remote_read_misses() * 30 + m.relocations * 225;
    assert_eq!(r.remote_read_stall, by_hand);
}
