//! Workload-level integration: every kernel runs end-to-end on several
//! system configurations, and the cross-workload character the paper's
//! analysis relies on (regular vs irregular) shows up in the metrics.

use dsm_core::runner::run_trace;
use dsm_core::{PcSize, Report, SystemSpec};
use dsm_trace::{Scale, SharedTrace, WorkloadKind};
use dsm_types::{Geometry, Topology};

fn run_dev(kind: WorkloadKind, specs: &[SystemSpec], scale: f64) -> Vec<Report> {
    let w = kind.dev_instance();
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    let refs = w.generate(&topo, Scale::new(scale).unwrap());
    let trace = SharedTrace::from_refs(topo, geo, &refs);
    specs
        .iter()
        .map(|s| run_trace(s, w.name(), w.shared_bytes(), &trace).unwrap())
        .collect()
}

#[test]
fn every_workload_runs_on_every_headline_system() {
    let specs = [
        SystemSpec::base(),
        SystemSpec::nc(),
        SystemSpec::vb(),
        SystemSpec::vp(),
        SystemSpec::ncd(),
        SystemSpec::ncs(),
        SystemSpec::ncp(PcSize::DataFraction(5)),
        SystemSpec::vxp(PcSize::DataFraction(5), 32),
    ];
    for kind in WorkloadKind::all() {
        let reports = run_dev(kind, &specs, 0.3);
        for r in &reports {
            assert_eq!(r.refs, r.metrics.shared_refs, "{kind}/{}", r.system);
            assert!(r.refs > 1000, "{kind}/{}", r.system);
        }
        // All systems process the identical trace.
        let refs = reports[0].refs;
        assert!(reports.iter().all(|r| r.refs == refs), "{kind}");
    }
}

#[test]
fn regular_kernels_have_lower_miss_ratios_than_irregular() {
    let spec = [SystemSpec::base()];
    let regular = [WorkloadKind::Fft, WorkloadKind::Lu, WorkloadKind::Ocean];
    let irregular = [WorkloadKind::Fmm, WorkloadKind::Raytrace];
    let avg = |kinds: &[WorkloadKind]| -> f64 {
        let mut sum = 0.0;
        for &k in kinds {
            let r = &run_dev(k, &spec, 0.3)[0];
            sum += r.read_miss_ratio + r.write_miss_ratio;
        }
        sum / kinds.len() as f64
    };
    let reg = avg(&regular);
    let irr = avg(&irregular);
    assert!(
        irr > reg * 2.0,
        "irregular ({irr:.4}) should dwarf regular ({reg:.4})"
    );
}

#[test]
fn radix_is_write_miss_dominated() {
    let r = &run_dev(WorkloadKind::Radix, &[SystemSpec::base()], 0.5)[0];
    assert!(
        r.write_miss_ratio > r.read_miss_ratio,
        "radix: write {:.4} vs read {:.4}",
        r.write_miss_ratio,
        r.read_miss_ratio
    );
}

#[test]
fn raytrace_is_read_miss_dominated() {
    let r = &run_dev(WorkloadKind::Raytrace, &[SystemSpec::base()], 0.5)[0];
    assert!(r.read_miss_ratio > r.write_miss_ratio * 5.0);
}

#[test]
fn first_touch_placement_keeps_most_references_local() {
    // The SPLASH-2 codes are tuned for first-touch: misses to remote data
    // must be a minority of all misses for the regular kernels.
    for kind in [WorkloadKind::Lu, WorkloadKind::Ocean] {
        let r = &run_dev(kind, &[SystemSpec::base()], 0.5)[0];
        let m = &r.metrics;
        let remote = m.remote_read_misses() + m.remote_write_misses();
        let local = m.local_misses;
        assert!(
            local > remote,
            "{kind}: local misses {local} <= remote {remote}"
        );
    }
}

#[test]
fn victim_capture_rate_tracks_locality() {
    // Irregular kernels generate more NC captures per reference than
    // regular ones (more victimized remote blocks).
    let vb = [SystemSpec::vb()];
    let fmm = &run_dev(WorkloadKind::Fmm, &vb, 0.3)[0];
    let lu = &run_dev(WorkloadKind::Lu, &vb, 0.3)[0];
    let rate = |r: &Report| r.metrics.nc_captures as f64 / r.refs as f64;
    assert!(
        rate(fmm) > rate(lu),
        "fmm {:.5} vs lu {:.5}",
        rate(fmm),
        rate(lu)
    );
}

#[test]
fn per_cluster_counts_sum_to_global() {
    use dsm_core::System;
    use dsm_types::ClusterId;
    let w = WorkloadKind::Fft.dev_instance();
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    let mut sys = System::new(
        SystemSpec::vbp(PcSize::DataFraction(5)),
        topo,
        geo,
        w.shared_bytes(),
    )
    .unwrap();
    sys.run(w.generate(&topo, Scale::new(0.3).unwrap()));
    let m = sys.metrics();
    let mut refs = 0;
    let mut remote_reads = 0;
    let mut remote_writes = 0;
    let mut nc_hits = 0;
    let mut pc_hits = 0;
    let mut relocations = 0;
    for c in topo.cluster_ids() {
        let cc = sys.cluster_counts(c);
        refs += cc.refs;
        remote_reads += cc.remote_reads;
        remote_writes += cc.remote_writes;
        nc_hits += cc.nc_hits;
        pc_hits += cc.pc_hits;
        relocations += cc.relocations;
    }
    assert_eq!(refs, m.shared_refs);
    assert_eq!(remote_reads, m.remote_read_misses());
    assert_eq!(remote_writes, m.remote_write_misses());
    assert_eq!(nc_hits, m.nc_read_hits + m.nc_write_hits);
    assert_eq!(pc_hits, m.pc_read_hits + m.pc_write_hits);
    assert_eq!(relocations, m.relocations);
    // Every cluster participates in a well-balanced SPLASH-2 kernel.
    for c in topo.cluster_ids() {
        assert!(sys.cluster_counts(c).refs > 0, "{c} idle");
    }
    let _ = ClusterId(0);
}

#[test]
fn traffic_decomposition_is_consistent() {
    for kind in WorkloadKind::all() {
        let r = &run_dev(kind, &[SystemSpec::vbp(PcSize::DataFraction(5))], 0.3)[0];
        let m = &r.metrics;
        assert_eq!(
            r.remote_traffic,
            m.remote_read_misses() + m.remote_write_misses() + m.remote_writebacks,
            "{kind}"
        );
    }
}
